//! Dense row-major matrix of `f64` values.
//!
//! This is the workhorse type of the workspace. It is deliberately simple:
//! a contiguous `Vec<f64>` in row-major order plus dimensions. All sketch
//! matrices in this project are short-and-wide (ℓ×d with ℓ ≪ d), so row-major
//! storage makes the hot kernels (row updates, Gram products) cache-friendly.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::error::{LinAlgError, Result};
use crate::vecops;

/// A dense, row-major, heap-allocated matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawMatrix")]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Unvalidated wire form of [`Matrix`]; deserialization goes through
/// [`TryFrom`] so shape/data inconsistencies are rejected.
#[derive(Deserialize)]
struct RawMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl TryFrom<RawMatrix> for Matrix {
    type Error = String;

    fn try_from(raw: RawMatrix) -> std::result::Result<Self, Self::Error> {
        if raw.data.len() != raw.rows * raw.cols {
            return Err(format!(
                "matrix payload has {} elements for shape {}x{}",
                raw.data.len(),
                raw.rows,
                raw.cols
            ));
        }
        Ok(Matrix {
            rows: raw.rows,
            cols: raw.cols,
            data: raw.data,
        })
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinAlgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinAlgError::ShapeMismatch {
                expected: (rows, cols),
                got: (data.len(), 1),
                op: "Matrix::from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Errors
    /// Returns [`LinAlgError::ShapeMismatch`] when rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinAlgError::ShapeMismatch {
                    expected: (1, cols),
                    got: (1, r.len()),
                    op: "Matrix::from_rows",
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a square diagonal matrix from `diag`.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Mutably borrow two distinct rows at once.
    ///
    /// # Panics
    /// Panics when `i == j` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, i: usize, j: usize) -> (&mut [f64], &mut [f64]) {
        assert!(i != j, "two_rows_mut requires distinct indices");
        assert!(i < self.rows && j < self.rows, "row index out of bounds");
        let c = self.cols;
        if i < j {
            let (a, b) = self.data.split_at_mut(j * c);
            (&mut a[i * c..(i + 1) * c], &mut b[..c])
        } else {
            let (a, b) = self.data.split_at_mut(i * c);
            let (rj, ri) = (&mut a[j * c..(j + 1) * c], &mut b[..c]);
            (ri, rj)
        }
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Set row `i` from a slice.
    ///
    /// # Panics
    /// Panics when lengths differ or `i` is out of bounds.
    pub fn set_row(&mut self, i: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row length mismatch");
        self.row_mut(i).copy_from_slice(values);
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for ib in (0..self.rows).step_by(B) {
            for jb in (0..self.cols).step_by(B) {
                for i in ib..(ib + B).min(self.rows) {
                    for j in jb..(jb + B).min(self.cols) {
                        t.data[j * self.rows + i] = self.data[i * self.cols + j];
                    }
                }
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an `i-k-j` loop order so the inner loop runs over contiguous rows
    /// of both the accumulator and `rhs`.
    ///
    /// # Errors
    /// Returns [`LinAlgError::ShapeMismatch`] when `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                expected: (self.cols, 0),
                got: (rhs.rows, rhs.cols),
                op: "Matrix::matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                vecops::axpy(aik, b_row, out_row);
            }
        }
        Ok(out)
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn tr_matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.rows != rhs.rows {
            return Err(LinAlgError::ShapeMismatch {
                expected: (self.rows, 0),
                got: (rhs.rows, rhs.cols),
                op: "Matrix::tr_matmul",
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (i, &ari) in a_row.iter().enumerate() {
                if ari == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                vecops::axpy(ari, b_row, out_row);
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (`cols × cols`), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let d = self.cols;
        let mut g = Matrix::zeros(d, d);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..d {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let grow = &mut g.data[i * d..(i + 1) * d];
                for j in i..d {
                    grow[j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..d {
            for j in 0..i {
                g.data[i * d + j] = g.data[j * d + i];
            }
        }
        g
    }

    /// Outer Gram matrix `self * selfᵀ` (`rows × rows`), exploiting symmetry.
    pub fn outer_gram(&self) -> Matrix {
        let n = self.rows;
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            let ri = self.row(i);
            for j in i..n {
                let v = vecops::dot(ri, self.row(j));
                g.data[i * n + j] = v;
                g.data[j * n + i] = v;
            }
        }
        g
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec length mismatch");
        self.iter_rows().map(|r| vecops::dot(r, x)).collect()
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    ///
    /// # Panics
    /// Panics when `x.len() != rows`.
    pub fn tr_matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tr_matvec length mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, row) in self.iter_rows().enumerate() {
            vecops::axpy(x[i], row, &mut out);
        }
        out
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "Matrix::add", |a, b| a + b)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "Matrix::sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinAlgError::ShapeMismatch {
                expected: self.shape(),
                got: rhs.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every element by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns `self * s` as a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.squared_frobenius_norm().sqrt()
    }

    /// Squared Frobenius norm `Σ aᵢⱼ²`.
    pub fn squared_frobenius_norm(&self) -> f64 {
        vecops::dot(&self.data, &self.data)
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Sub-matrix of the first `r` rows (copies).
    ///
    /// # Panics
    /// Panics when `r > rows`.
    pub fn top_rows(&self, r: usize) -> Matrix {
        assert!(r <= self.rows, "top_rows: {r} > {}", self.rows);
        Matrix {
            rows: r,
            cols: self.cols,
            data: self.data[..r * self.cols].to_vec(),
        }
    }

    /// Extract a copy of the rows selected by `indices` (in order).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (oi, &i) in indices.iter().enumerate() {
            out.set_row(oi, self.row(i));
        }
        out
    }

    /// Append a row, growing the matrix by one row.
    ///
    /// # Panics
    /// Panics when `row.len() != cols` (for a non-empty matrix).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetric check up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let m = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_wrong_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        assert!(Matrix::from_rows(&rows).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small_known_result() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]).unwrap();
        let b = Matrix::from_vec(2, 2, vec![5., 6., 7., 8.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn tr_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![6., 5., 4., 3., 2., 1.]).unwrap();
        let fast = a.tr_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn gram_matches_tr_matmul_self() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let g = a.gram();
        let g2 = a.tr_matmul(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g[(i, j)], g2[(i, j)]));
            }
        }
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn outer_gram_matches_matmul_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 0., 2., -1., 3., 1.]).unwrap();
        let g = a.outer_gram();
        let g2 = a.matmul(&a.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g[(i, j)], g2[(i, j)]));
            }
        }
    }

    #[test]
    fn matvec_and_tr_matvec_agree_with_matmul() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let x = [1.0, -1.0, 2.0];
        let y = a.matvec(&x);
        assert_eq!(y, vec![5.0, 11.0]);
        let z = a.tr_matvec(&[1.0, 1.0]);
        assert_eq!(z, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        {
            let (a, b) = m.two_rows_mut(0, 2);
            std::mem::swap(&mut a[0], &mut b[0]);
        }
        assert_eq!(m[(0, 0)], 5.0);
        assert_eq!(m[(2, 0)], 1.0);
        {
            let (a, b) = m.two_rows_mut(2, 0);
            std::mem::swap(&mut a[1], &mut b[1]);
        }
        assert_eq!(m[(2, 1)], 2.0);
        assert_eq!(m[(0, 1)], 6.0);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_vec(2, 2, vec![3., 0., 0., 4.]).unwrap();
        assert!(approx(m.frobenius_norm(), 5.0));
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn scale_and_add_sub() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = Matrix::identity(2);
        let c = a.add(&b).unwrap();
        assert_eq!(c[(0, 0)], 3.0);
        let d = c.sub(&b).unwrap();
        assert_eq!(d, a);
        assert_eq!(a.scaled(0.5)[(1, 1)], 1.0);
    }

    #[test]
    fn is_symmetric_detects_asymmetry() {
        let mut m = Matrix::identity(3);
        assert!(m.is_symmetric(0.0));
        m[(0, 1)] = 0.5;
        assert!(!m.is_symmetric(1e-9));
    }
}
