//! Vector kernels over `&[f64]` slices.
//!
//! These free functions are the innermost loops of every sketch update and
//! score computation, so they are written to auto-vectorize: straight-line
//! iterator chains over contiguous slices, no bounds checks in the hot path.

/// Dot product `Σ aᵢ bᵢ`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    // Four-lane manual unroll: keeps independent accumulator chains so the
    // compiler can vectorize without needing -ffast-math reassociation.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in chunks * 4..a.len() {
        tail += a[j] * b[j];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `y ← alpha * y`.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// ℓ₁ norm `Σ |xᵢ|`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// ℓ∞ norm `max |xᵢ|`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Normalizes `x` to unit Euclidean length in place; returns the original norm.
///
/// A zero vector is left unchanged and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Squared Euclidean distance `‖a − b‖₂²`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Elementwise subtraction into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Elementwise addition into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// True when every element is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Gram–Schmidt: removes from `v` its components along each (unit-norm) row of
/// `basis`, iterating twice for numerical robustness ("twice is enough").
pub fn orthogonalize_against(v: &mut [f64], basis: &[&[f64]]) {
    for _ in 0..2 {
        for b in basis {
            let c = dot(v, b);
            axpy(-c, b, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known_values() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // Length > 4 exercises the unrolled path plus tail.
        let a: Vec<f64> = (1..=9).map(f64::from).collect();
        let expect: f64 = a.iter().map(|v| v * v).sum();
        assert_eq!(dot(&a, &a), expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norms_known_values() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn normalize_unit_length_and_zero_vector() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn dist_sq_symmetry() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist_sq(&b, &a), 25.0);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let e1 = [1.0, 0.0, 0.0];
        let e2 = [0.0, 1.0, 0.0];
        let mut v = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut v, &[&e1, &e2]);
        assert!(v[0].abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
        assert!((v[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0];
        let b = [0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn all_finite_detects_nan() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
