//! Vector kernels over `&[f64]` slices.
//!
//! These free functions are the innermost loops of every sketch update and
//! score computation. Each public kernel has two implementations:
//!
//! * a **scalar** path written to auto-vectorize on stable rustc —
//!   `chunks_exact` blocks (no bounds checks in the hot path) with four
//!   independent accumulator chains, so the compiler can emit SIMD without
//!   needing `-ffast-math` reassociation; and
//! * an **AVX2+FMA** path (x86-64 only) selected by runtime feature
//!   detection, since the default `x86_64` target compiles the scalar path
//!   to baseline SSE2 and leaves 2–4× on the table on any post-2013 core.
//!
//! Path selection depends only on the slice length and the host CPU, so a
//! given machine always takes the same path for the same input: results are
//! bitwise reproducible run-to-run. Across *different* machines the low bits
//! may differ (FMA fuses the multiply-add rounding) — the workspace's
//! determinism contract is per-host, matching the seeded-RNG contract.
//!
//! The fused kernels [`dot4`] and [`axpy4`] process four rows against one
//! shared vector in a single pass. They are *bitwise compatible* with their
//! one-row counterparts on every path: `dot4(a0, a1, a2, a3, b)[i] ==
//! dot(ai, b)` exactly, and `axpy4` produces the same bits as four
//! sequential [`axpy`] calls. The blocked matrix kernels rely on this to
//! keep batched results identical to the one-at-a-time paths.

/// Below this length the scalar path is used unconditionally: the SIMD
/// prologue/reduction costs more than it saves, and keeping one fixed
/// threshold makes path selection a pure function of `len`.
const MIN_SIMD_LEN: usize = 8;

/// SIMD capability tiers, cached once (the kernels below sit on per-point
/// hot paths where even a couple of extra atomic loads per call are
/// measurable). The dot family prefers AVX-512 (half the loop trips at the
/// short lengths scoring uses); the axpy family and the gemm micro-kernel
/// are store-bound and stay on the 256-bit path.
///
/// Setting `SKETCHAD_FORCE_SCALAR=1` in the environment pins tier 0
/// regardless of CPU capabilities. CI uses this to run the whole test suite
/// down the scalar path on hardware whose feature detection would otherwise
/// always pick the `unsafe` SIMD kernels; it is read once, at the first
/// kernel call.
#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_level() -> u8 {
    static LEVEL: std::sync::OnceLock<u8> = std::sync::OnceLock::new();
    *LEVEL.get_or_init(|| {
        if force_scalar_requested()
            || !(std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma"))
        {
            0
        } else if std::is_x86_feature_detected!("avx512f") {
            2
        } else {
            1
        }
    })
}

/// Whether `SKETCHAD_FORCE_SCALAR` asks for the scalar path.
#[cfg(target_arch = "x86_64")]
fn force_scalar_requested() -> bool {
    parse_force_scalar(std::env::var("SKETCHAD_FORCE_SCALAR").ok().as_deref())
}

/// Any non-empty value other than `0` counts as a request, so `=1`, `=true`,
/// `=yes` all work and `=0` / unset do not.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
fn parse_force_scalar(value: Option<&str>) -> bool {
    matches!(value, Some(v) if !v.is_empty() && v != "0")
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_enabled() -> bool {
    simd_level() >= 1
}

/// The dispatch tier the kernels in this module are actually using, as a
/// stable label: `"scalar"`, `"avx2+fma"`, or `"avx512f"`.
///
/// Purely diagnostic — benches and CI logs print it so a run's numbers can
/// be attributed to the code path that produced them (and so the
/// `SKETCHAD_FORCE_SCALAR=1` job can assert the override took effect).
/// Calling this caches the tier, like any kernel call.
pub fn active_simd_tier() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match simd_level() {
            2 => "avx512f",
            1 => "avx2+fma",
            _ => "scalar",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "scalar"
    }
}

/// Dot product `Σ aᵢ bᵢ`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    #[cfg(target_arch = "x86_64")]
    if a.len() >= MIN_SIMD_LEN {
        // SAFETY: the matching CPU features were verified at runtime.
        #[allow(unsafe_code)]
        match simd_level() {
            2 => return unsafe { simd::dot512(a, b) },
            1 => return unsafe { simd::dot(a, b) },
            _ => {}
        }
    }
    scalar_dot(a, b)
}

#[inline]
fn scalar_dot(a: &[f64], b: &[f64]) -> f64 {
    // Four independent accumulator chains over exact 4-blocks: the compiler
    // vectorizes this without reassociating, keeping results deterministic.
    let mut acc = [0.0f64; 4];
    let a_blocks = a.chunks_exact(4);
    let b_blocks = b.chunks_exact(4);
    let a_tail = a_blocks.remainder();
    let b_tail = b_blocks.remainder();
    for (ab, bb) in a_blocks.zip(b_blocks) {
        acc[0] += ab[0] * bb[0];
        acc[1] += ab[1] * bb[1];
        acc[2] += ab[2] * bb[2];
        acc[3] += ab[3] * bb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a_tail.iter().zip(b_tail.iter()) {
        tail += x * y;
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Four simultaneous dot products of rows `a0..a3` against a shared `b`.
///
/// Returns `[dot(a0, b), dot(a1, b), dot(a2, b), dot(a3, b)]`, each bitwise
/// identical to the corresponding [`dot`] call — on the SIMD path this is
/// literally four calls into the same vector kernel (with `b` L1-hot after
/// the first), and on the scalar path a fused loop that replicates [`dot`]'s
/// accumulation order per row. This is the inner kernel of
/// `Matrix::matmul_nt` and the batched scoring path.
///
/// # Panics
/// Panics when any slice length differs from `b.len()`.
#[inline]
pub fn dot4(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], b: &[f64]) -> [f64; 4] {
    let n = b.len();
    assert!(
        a0.len() == n && a1.len() == n && a2.len() == n && a3.len() == n,
        "dot4: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if n >= MIN_SIMD_LEN {
        // SAFETY: the matching CPU features were verified at runtime.
        #[allow(unsafe_code)]
        match simd_level() {
            2 => {
                return unsafe {
                    [
                        simd::dot512(a0, b),
                        simd::dot512(a1, b),
                        simd::dot512(a2, b),
                        simd::dot512(a3, b),
                    ]
                }
            }
            1 => {
                return unsafe {
                    [
                        simd::dot(a0, b),
                        simd::dot(a1, b),
                        simd::dot(a2, b),
                        simd::dot(a3, b),
                    ]
                }
            }
            _ => {}
        }
    }
    scalar_dot4(a0, a1, a2, a3, b)
}

#[inline]
fn scalar_dot4(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], b: &[f64]) -> [f64; 4] {
    let n = b.len();
    let mut acc0 = [0.0f64; 4];
    let mut acc1 = [0.0f64; 4];
    let mut acc2 = [0.0f64; 4];
    let mut acc3 = [0.0f64; 4];
    let blocks = n / 4;
    let split = blocks * 4;
    // Equal-length reslices let the compiler elide all bounds checks below.
    let (b0, bt) = b.split_at(split);
    let (r0, t0) = a0.split_at(split);
    let (r1, t1) = a1.split_at(split);
    let (r2, t2) = a2.split_at(split);
    let (r3, t3) = a3.split_at(split);
    for i in 0..blocks {
        let j = i * 4;
        acc0[0] += r0[j] * b0[j];
        acc0[1] += r0[j + 1] * b0[j + 1];
        acc0[2] += r0[j + 2] * b0[j + 2];
        acc0[3] += r0[j + 3] * b0[j + 3];
        acc1[0] += r1[j] * b0[j];
        acc1[1] += r1[j + 1] * b0[j + 1];
        acc1[2] += r1[j + 2] * b0[j + 2];
        acc1[3] += r1[j + 3] * b0[j + 3];
        acc2[0] += r2[j] * b0[j];
        acc2[1] += r2[j + 1] * b0[j + 1];
        acc2[2] += r2[j + 2] * b0[j + 2];
        acc2[3] += r2[j + 3] * b0[j + 3];
        acc3[0] += r3[j] * b0[j];
        acc3[1] += r3[j + 1] * b0[j + 1];
        acc3[2] += r3[j + 2] * b0[j + 2];
        acc3[3] += r3[j + 3] * b0[j + 3];
    }
    let mut tails = [0.0f64; 4];
    for (i, &bv) in bt.iter().enumerate() {
        tails[0] += t0[i] * bv;
        tails[1] += t1[i] * bv;
        tails[2] += t2[i] * bv;
        tails[3] += t3[i] * bv;
    }
    [
        acc0[0] + acc0[1] + acc0[2] + acc0[3] + tails[0],
        acc1[0] + acc1[1] + acc1[2] + acc1[3] + tails[1],
        acc2[0] + acc2[1] + acc2[2] + acc2[3] + tails[2],
        acc3[0] + acc3[1] + acc3[2] + acc3[3] + tails[3],
    ]
}

/// Dot products of `nrows` row-major rows against a shared `y`:
/// `out[j] = dot(rows[j], y)`, where row `j` is `b[j*ldb .. j*ldb + d]`.
///
/// Each output is bitwise identical to the corresponding [`dot`] call; the
/// point of this kernel is one dispatch (and one inlined feature region) for
/// the whole row sweep instead of one per row. This is the inner loop of
/// `Matrix::matmul_nt` and the batched scoring path, where `b` is the k×d
/// basis and `y` a point.
///
/// # Panics
/// Panics when `y.len() != d`, `out.len() != nrows`, or `b` is too short for
/// `nrows` rows of stride `ldb` (with `d <= ldb`).
pub fn row_dots(b: &[f64], ldb: usize, d: usize, nrows: usize, y: &[f64], out: &mut [f64]) {
    assert_eq!(y.len(), d, "row_dots: y length mismatch");
    assert_eq!(out.len(), nrows, "row_dots: out length mismatch");
    assert!(
        d <= ldb || nrows <= 1,
        "row_dots: row stride shorter than row"
    );
    if nrows > 0 {
        assert!(
            (nrows - 1) * ldb + d <= b.len(),
            "row_dots: rows out of bounds"
        );
    }
    #[cfg(target_arch = "x86_64")]
    if d >= MIN_SIMD_LEN {
        // SAFETY: the matching CPU features were verified at runtime, and
        // the asserts above bound every row access.
        #[allow(unsafe_code)]
        match simd_level() {
            2 => {
                unsafe { simd::row_dots512(b, ldb, d, nrows, y, out) };
                return;
            }
            1 => {
                unsafe { simd::row_dots(b, ldb, d, nrows, y, out) };
                return;
            }
            _ => {}
        }
    }
    for (j, o) in out.iter_mut().enumerate() {
        *o = scalar_dot(&b[j * ldb..j * ldb + d], y);
    }
}

/// Accumulates four rows of a matrix product into `out`:
/// `out[r][j] += Σ_k a_r[k] · b[k][j]` for `r in 0..4`, `j in 0..n`, where
/// `b` is row-major with stride `ldb` and `out` holds four rows of stride
/// `ldo`. Returns `false` without touching `out` when the AVX2+FMA
/// micro-kernel is unavailable — the caller must then run its scalar path.
///
/// This is the register-tiled heart of `Matrix::matmul`: a 4×8 accumulator
/// tile lives entirely in registers across the full `k` loop, so `out` is
/// written once per tile instead of once per `(k, j)` like the axpy
/// formulation.
///
/// # Panics
/// Panics when the row lengths disagree or `b`/`out` are too short for the
/// strides.
#[allow(clippy::too_many_arguments)]
pub fn gemm4(
    a0: &[f64],
    a1: &[f64],
    a2: &[f64],
    a3: &[f64],
    b: &[f64],
    ldb: usize,
    n: usize,
    out: &mut [f64],
    ldo: usize,
) -> bool {
    let kdim = a0.len();
    assert!(
        a1.len() == kdim && a2.len() == kdim && a3.len() == kdim,
        "gemm4: a-row length mismatch"
    );
    assert!(n <= ldb || kdim <= 1, "gemm4: b stride shorter than row");
    assert!(n <= ldo, "gemm4: out stride shorter than row");
    if kdim > 0 {
        assert!((kdim - 1) * ldb + n <= b.len(), "gemm4: b out of bounds");
    }
    assert!(3 * ldo + n <= out.len(), "gemm4: out too short for 4 rows");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 and FMA presence was just verified at runtime, and the
        // asserts above bound every access the kernel makes.
        #[allow(unsafe_code)]
        unsafe {
            simd::gemm4(a0, a1, a2, a3, b, ldb, n, out, ldo)
        };
        return true;
    }
    false
}

/// Accumulates the upper-triangle Gram contribution of four stream rows:
/// `g[i][i..] += Σ_r x_r[i] · x_r[i..]` for `i in 0..d`, with `g` a
/// row-major `d × d` matrix. Semantically one [`axpy4`] per output row, but
/// a single kernel dispatch covers the whole sweep — at small `d` the
/// per-call dispatch and bounds checks of `d` separate axpy4 calls on
/// ever-shorter slices are a double-digit-percent tax. Returns `false`
/// without touching `g` when the SIMD kernel is unavailable.
///
/// # Panics
/// Panics when any `x` length differs from `d` or `g.len() != d * d`.
pub fn gram4_upper(
    x0: &[f64],
    x1: &[f64],
    x2: &[f64],
    x3: &[f64],
    g: &mut [f64],
    d: usize,
) -> bool {
    assert!(
        x0.len() == d && x1.len() == d && x2.len() == d && x3.len() == d,
        "gram4_upper: row length mismatch"
    );
    assert_eq!(g.len(), d * d, "gram4_upper: gram buffer size mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 and FMA presence was just verified at runtime, and
        // the asserts above bound every slice taken inside.
        #[allow(unsafe_code)]
        unsafe {
            simd::gram4_upper(x0, x1, x2, x3, g, d)
        };
        return true;
    }
    false
}

/// `y ← y + alpha * x`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if y.len() >= MIN_SIMD_LEN && simd_enabled() {
        // SAFETY: AVX2 and FMA presence was just verified at runtime.
        #[allow(unsafe_code)]
        return unsafe { simd::axpy(alpha, x, y) };
    }
    scalar_axpy(alpha, x, y)
}

#[inline]
fn scalar_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    let x_blocks = x.chunks_exact(4);
    let x_tail = x_blocks.remainder();
    let mut y_blocks = y.chunks_exact_mut(4);
    for (yb, xb) in y_blocks.by_ref().zip(x_blocks) {
        yb[0] += alpha * xb[0];
        yb[1] += alpha * xb[1];
        yb[2] += alpha * xb[2];
        yb[3] += alpha * xb[3];
    }
    for (yi, xi) in y_blocks.into_remainder().iter_mut().zip(x_tail.iter()) {
        *yi += alpha * xi;
    }
}

/// Fused four-row axpy: `y ← y + a0·x0 + a1·x1 + a2·x2 + a3·x3` in one pass.
///
/// Per element the additions nest in row order, so the result is bitwise
/// identical to four sequential [`axpy`] calls on every path — but `y` is
/// read and written once instead of four times. This is the inner kernel of
/// the retiled `Matrix::matmul` / `tr_matmul` / `gram`.
///
/// # Panics
/// Panics when any slice length differs from `y.len()`.
#[inline]
pub fn axpy4(alpha: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64], y: &mut [f64]) {
    let n = y.len();
    assert!(
        x0.len() == n && x1.len() == n && x2.len() == n && x3.len() == n,
        "axpy4: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if n >= MIN_SIMD_LEN && simd_enabled() {
        // SAFETY: AVX2 and FMA presence was just verified at runtime.
        #[allow(unsafe_code)]
        return unsafe { simd::axpy4(alpha, x0, x1, x2, x3, y) };
    }
    scalar_axpy4(alpha, x0, x1, x2, x3, y)
}

#[inline]
fn scalar_axpy4(alpha: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64], y: &mut [f64]) {
    let n = y.len();
    let blocks = n / 4;
    let split = blocks * 4;
    let (r0, t0) = x0.split_at(split);
    let (r1, t1) = x1.split_at(split);
    let (r2, t2) = x2.split_at(split);
    let (r3, t3) = x3.split_at(split);
    let (ym, yt) = y.split_at_mut(split);
    for i in 0..blocks {
        let j = i * 4;
        ym[j] = ym[j] + alpha[0] * r0[j] + alpha[1] * r1[j] + alpha[2] * r2[j] + alpha[3] * r3[j];
        ym[j + 1] = ym[j + 1]
            + alpha[0] * r0[j + 1]
            + alpha[1] * r1[j + 1]
            + alpha[2] * r2[j + 1]
            + alpha[3] * r3[j + 1];
        ym[j + 2] = ym[j + 2]
            + alpha[0] * r0[j + 2]
            + alpha[1] * r1[j + 2]
            + alpha[2] * r2[j + 2]
            + alpha[3] * r3[j + 2];
        ym[j + 3] = ym[j + 3]
            + alpha[0] * r0[j + 3]
            + alpha[1] * r1[j + 3]
            + alpha[2] * r2[j + 3]
            + alpha[3] * r3[j + 3];
    }
    for (i, yi) in yt.iter_mut().enumerate() {
        *yi = *yi + alpha[0] * t0[i] + alpha[1] * t1[i] + alpha[2] * t2[i] + alpha[3] * t3[i];
    }
}

/// Runtime-dispatched AVX2+FMA kernels. Kept in one module so the
/// crate-level `deny(unsafe_code)` has exactly one sanctioned exception.
///
/// Invariants the dispatchers above rely on:
/// * every function here is only called after `simd_enabled()` returned
///   true, so the `#[target_feature]` contracts hold;
/// * the vector/scalar split point inside each kernel is `4 * (n / 4)`,
///   matching the corresponding fused kernel so `axpy4` stays bitwise equal
///   to four sequential `axpy` calls;
/// * scalar tails use separate multiply-then-add (no fusing), same as the
///   scalar kernels' tails.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    use std::arch::x86_64::*;

    /// Dot product with four 256-bit FMA accumulator chains.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; `a` and `b` must have equal lengths (checked
    /// by the public wrapper).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut acc2 = _mm256_setzero_pd();
        let mut acc3 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 16 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
                acc1,
            );
            acc2 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 8)),
                _mm256_loadu_pd(bp.add(i + 8)),
                acc2,
            );
            acc3 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 12)),
                _mm256_loadu_pd(bp.add(i + 12)),
                acc3,
            );
            i += 16;
        }
        while i + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            i += 4;
        }
        // Fixed reduction order: (acc0+acc1) + (acc2+acc3), then low→high
        // within the register, then the scalar tail.
        let sum = _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
        let lo = _mm256_castpd256_pd128(sum);
        let hi = _mm256_extractf128_pd(sum, 1);
        let pair = _mm_add_pd(lo, hi);
        let mut s = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
        while i < n {
            s += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        s
    }

    /// Dot product with four 512-bit FMA accumulator chains — the same
    /// shape as [`dot`] but half the loop trips, which matters most at the
    /// short lengths (d = 64…512) the scoring paths use.
    ///
    /// # Safety
    /// Requires AVX-512F; `a` and `b` must have equal lengths (checked by
    /// the public wrapper).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn dot512(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        let mut acc2 = _mm512_setzero_pd();
        let mut acc3 = _mm512_setzero_pd();
        let mut i = 0usize;
        while i + 32 <= n {
            acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)), acc0);
            acc1 = _mm512_fmadd_pd(
                _mm512_loadu_pd(ap.add(i + 8)),
                _mm512_loadu_pd(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm512_fmadd_pd(
                _mm512_loadu_pd(ap.add(i + 16)),
                _mm512_loadu_pd(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm512_fmadd_pd(
                _mm512_loadu_pd(ap.add(i + 24)),
                _mm512_loadu_pd(bp.add(i + 24)),
                acc3,
            );
            i += 32;
        }
        while i + 8 <= n {
            acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(ap.add(i)), _mm512_loadu_pd(bp.add(i)), acc0);
            i += 8;
        }
        // Fixed reduction order: (acc0+acc1) + (acc2+acc3), in-register tree
        // reduce, then the scalar tail.
        let sum = _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3));
        let mut s = _mm512_reduce_add_pd(sum);
        while i < n {
            s += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        s
    }

    /// Row sweep of [`dot`] against a shared `y`, one feature region for the
    /// whole sweep so the per-row kernel inlines without re-dispatch.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; the public wrapper's asserts bound every row
    /// slice taken here.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn row_dots(
        b: &[f64],
        ldb: usize,
        d: usize,
        nrows: usize,
        y: &[f64],
        out: &mut [f64],
    ) {
        for j in 0..nrows {
            *out.get_unchecked_mut(j) = dot(b.get_unchecked(j * ldb..j * ldb + d), y);
        }
    }

    /// [`row_dots`] on the 512-bit [`dot512`] kernel.
    ///
    /// # Safety
    /// Requires AVX-512F; the public wrapper's asserts bound every row slice
    /// taken here.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn row_dots512(
        b: &[f64],
        ldb: usize,
        d: usize,
        nrows: usize,
        y: &[f64],
        out: &mut [f64],
    ) {
        for j in 0..nrows {
            *out.get_unchecked_mut(j) = dot512(b.get_unchecked(j * ldb..j * ldb + d), y);
        }
    }

    /// 4-row register-tiled GEMM block: `out[r][j] += Σ_k a_r[k]·b[k][j]`.
    ///
    /// The j loop walks 8 columns at a time holding a 4×8 accumulator tile
    /// (eight ymm registers) across the entire k loop; per k step it costs
    /// two `b` loads plus four broadcasts for eight FMAs, and `out` is only
    /// touched once per tile. 4-column and scalar column tails follow the
    /// same k-inner ordering.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; the public wrapper's asserts guarantee
    /// `(kdim-1)*ldb + n <= b.len()` and `3*ldo + n <= out.len()`.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm4(
        a0: &[f64],
        a1: &[f64],
        a2: &[f64],
        a3: &[f64],
        b: &[f64],
        ldb: usize,
        n: usize,
        out: &mut [f64],
        ldo: usize,
    ) {
        let kdim = a0.len();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let mut c00 = _mm256_setzero_pd();
            let mut c01 = _mm256_setzero_pd();
            let mut c10 = _mm256_setzero_pd();
            let mut c11 = _mm256_setzero_pd();
            let mut c20 = _mm256_setzero_pd();
            let mut c21 = _mm256_setzero_pd();
            let mut c30 = _mm256_setzero_pd();
            let mut c31 = _mm256_setzero_pd();
            for k in 0..kdim {
                let b0 = _mm256_loadu_pd(bp.add(k * ldb + j));
                let b1 = _mm256_loadu_pd(bp.add(k * ldb + j + 4));
                let v0 = _mm256_set1_pd(*a0.get_unchecked(k));
                c00 = _mm256_fmadd_pd(v0, b0, c00);
                c01 = _mm256_fmadd_pd(v0, b1, c01);
                let v1 = _mm256_set1_pd(*a1.get_unchecked(k));
                c10 = _mm256_fmadd_pd(v1, b0, c10);
                c11 = _mm256_fmadd_pd(v1, b1, c11);
                let v2 = _mm256_set1_pd(*a2.get_unchecked(k));
                c20 = _mm256_fmadd_pd(v2, b0, c20);
                c21 = _mm256_fmadd_pd(v2, b1, c21);
                let v3 = _mm256_set1_pd(*a3.get_unchecked(k));
                c30 = _mm256_fmadd_pd(v3, b0, c30);
                c31 = _mm256_fmadd_pd(v3, b1, c31);
            }
            for (r, (lo, hi)) in [(c00, c01), (c10, c11), (c20, c21), (c30, c31)]
                .into_iter()
                .enumerate()
            {
                let p = op.add(r * ldo + j);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), lo));
                _mm256_storeu_pd(p.add(4), _mm256_add_pd(_mm256_loadu_pd(p.add(4)), hi));
            }
            j += 8;
        }
        while j + 4 <= n {
            let mut c0 = _mm256_setzero_pd();
            let mut c1 = _mm256_setzero_pd();
            let mut c2 = _mm256_setzero_pd();
            let mut c3 = _mm256_setzero_pd();
            for k in 0..kdim {
                let bv = _mm256_loadu_pd(bp.add(k * ldb + j));
                c0 = _mm256_fmadd_pd(_mm256_set1_pd(*a0.get_unchecked(k)), bv, c0);
                c1 = _mm256_fmadd_pd(_mm256_set1_pd(*a1.get_unchecked(k)), bv, c1);
                c2 = _mm256_fmadd_pd(_mm256_set1_pd(*a2.get_unchecked(k)), bv, c2);
                c3 = _mm256_fmadd_pd(_mm256_set1_pd(*a3.get_unchecked(k)), bv, c3);
            }
            for (r, c) in [c0, c1, c2, c3].into_iter().enumerate() {
                let p = op.add(r * ldo + j);
                _mm256_storeu_pd(p, _mm256_add_pd(_mm256_loadu_pd(p), c));
            }
            j += 4;
        }
        while j < n {
            for (r, a) in [a0, a1, a2, a3].into_iter().enumerate() {
                let mut s = *op.add(r * ldo + j);
                for (k, &ak) in a.iter().enumerate() {
                    s = ak.mul_add(*bp.add(k * ldb + j), s);
                }
                *op.add(r * ldo + j) = s;
            }
            j += 1;
        }
    }

    /// Upper-triangle Gram sweep of four stream rows in one feature region:
    /// row `i` of `g` gets one inlined [`axpy4`] over the `[i..]` tails.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; the public wrapper's asserts guarantee all
    /// four rows have length `d` and `g` has length `d * d`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gram4_upper(
        x0: &[f64],
        x1: &[f64],
        x2: &[f64],
        x3: &[f64],
        g: &mut [f64],
        d: usize,
    ) {
        for i in 0..d {
            let alpha = [
                *x0.get_unchecked(i),
                *x1.get_unchecked(i),
                *x2.get_unchecked(i),
                *x3.get_unchecked(i),
            ];
            axpy4(
                alpha,
                x0.get_unchecked(i..),
                x1.get_unchecked(i..),
                x2.get_unchecked(i..),
                x3.get_unchecked(i..),
                g.get_unchecked_mut(i * d + i..(i + 1) * d),
            );
        }
    }

    /// `y ← y + alpha·x`, one fused multiply-add per element.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; slices must have equal lengths (checked by the
    /// public wrapper).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let a = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let y0 = _mm256_fmadd_pd(a, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            let y1 = _mm256_fmadd_pd(
                a,
                _mm256_loadu_pd(xp.add(i + 4)),
                _mm256_loadu_pd(yp.add(i + 4)),
            );
            _mm256_storeu_pd(yp.add(i), y0);
            _mm256_storeu_pd(yp.add(i + 4), y1);
            i += 8;
        }
        while i + 4 <= n {
            let y0 = _mm256_fmadd_pd(a, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
            _mm256_storeu_pd(yp.add(i), y0);
            i += 4;
        }
        while i < n {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// Fused four-row axpy; the FMA chain nests in row order per element, so
    /// the result is bitwise identical to four sequential [`axpy`] calls.
    ///
    /// # Safety
    /// Requires AVX2 and FMA; all slices must have equal lengths (checked by
    /// the public wrapper).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy4(
        alpha: [f64; 4],
        x0: &[f64],
        x1: &[f64],
        x2: &[f64],
        x3: &[f64],
        y: &mut [f64],
    ) {
        let n = y.len();
        let a0 = _mm256_set1_pd(alpha[0]);
        let a1 = _mm256_set1_pd(alpha[1]);
        let a2 = _mm256_set1_pd(alpha[2]);
        let a3 = _mm256_set1_pd(alpha[3]);
        let p0 = x0.as_ptr();
        let p1 = x1.as_ptr();
        let p2 = x2.as_ptr();
        let p3 = x3.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let mut v = _mm256_loadu_pd(yp.add(i));
            v = _mm256_fmadd_pd(a0, _mm256_loadu_pd(p0.add(i)), v);
            v = _mm256_fmadd_pd(a1, _mm256_loadu_pd(p1.add(i)), v);
            v = _mm256_fmadd_pd(a2, _mm256_loadu_pd(p2.add(i)), v);
            v = _mm256_fmadd_pd(a3, _mm256_loadu_pd(p3.add(i)), v);
            _mm256_storeu_pd(yp.add(i), v);
            i += 4;
        }
        while i < n {
            // Separate multiply-then-add per row, matching the scalar tail of
            // sequential `axpy` calls bit for bit.
            let mut v = *yp.add(i);
            v += alpha[0] * *p0.add(i);
            v += alpha[1] * *p1.add(i);
            v += alpha[2] * *p2.add(i);
            v += alpha[3] * *p3.add(i);
            *yp.add(i) = v;
            i += 1;
        }
    }
}

/// `y ← alpha * y`.
#[inline]
pub fn scale(alpha: f64, y: &mut [f64]) {
    let mut blocks = y.chunks_exact_mut(4);
    for yb in blocks.by_ref() {
        yb[0] *= alpha;
        yb[1] *= alpha;
        yb[2] *= alpha;
        yb[3] *= alpha;
    }
    for yi in blocks.into_remainder() {
        *yi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm `‖x‖₂²`.
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    dot(x, x)
}

/// ℓ₁ norm `Σ |xᵢ|`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// ℓ∞ norm `max |xᵢ|`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

/// Normalizes `x` to unit Euclidean length in place; returns the original norm.
///
/// A zero vector is left unchanged and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Squared Euclidean distance `‖a − b‖₂²`.
///
/// # Panics
/// Panics when the slices have different lengths.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum()
}

/// Elementwise subtraction into a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x - y).collect()
}

/// Elementwise addition into a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// True when every element is finite.
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

/// Gram–Schmidt: removes from `v` its components along each (unit-norm) row of
/// `basis`, iterating twice for numerical robustness ("twice is enough").
pub fn orthogonalize_against(v: &mut [f64], basis: &[&[f64]]) {
    for _ in 0..2 {
        for b in basis {
            let c = dot(v, b);
            axpy(-c, b, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parsing() {
        assert!(parse_force_scalar(Some("1")));
        assert!(parse_force_scalar(Some("true")));
        assert!(parse_force_scalar(Some("yes")));
        assert!(!parse_force_scalar(Some("0")));
        assert!(!parse_force_scalar(Some("")));
        assert!(!parse_force_scalar(None));
    }

    #[test]
    fn active_tier_is_a_known_label_and_stable() {
        let tier = active_simd_tier();
        assert!(
            ["scalar", "avx2+fma", "avx512f"].contains(&tier),
            "unknown tier {tier:?}"
        );
        // The tier is cached at first use: repeated calls must agree.
        assert_eq!(tier, active_simd_tier());
        // When the CI override is set, dispatch must have pinned scalar.
        if parse_force_scalar(std::env::var("SKETCHAD_FORCE_SCALAR").ok().as_deref()) {
            assert_eq!(tier, "scalar");
        }
    }

    #[test]
    fn dot_known_values() {
        assert_eq!(dot(&[1., 2., 3.], &[4., 5., 6.]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
        // Length > 4 exercises the unrolled path plus tail.
        let a: Vec<f64> = (1..=9).map(f64::from).collect();
        let expect: f64 = a.iter().map(|v| v * v).sum();
        assert_eq!(dot(&a, &a), expect);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn dot_simd_path_agrees_with_scalar() {
        // Lengths straddling the 16-wide main loop, 4-wide secondary loop
        // and scalar tail of the SIMD kernel. On non-AVX2 hosts this
        // degenerates to scalar-vs-scalar and still passes.
        for n in [8usize, 15, 16, 17, 31, 64, 100, 1023] {
            let a: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..n).map(|i| ((i * 3 + 2) as f64 * 0.29).cos()).collect();
            let fast = dot(&a, &b);
            let slow = scalar_dot(&a, &b);
            let scale = slow.abs().max(1.0);
            assert!(
                (fast - slow).abs() <= 1e-12 * scale,
                "n={n}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn axpy_simd_path_agrees_with_scalar() {
        for n in [8usize, 15, 17, 64, 257] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 5 + 3) as f64 * 0.41).sin()).collect();
            let base: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos()).collect();
            let mut fast = base.clone();
            axpy(1.7, &x, &mut fast);
            let mut slow = base.clone();
            scalar_axpy(1.7, &x, &mut slow);
            for i in 0..n {
                assert!((fast[i] - slow[i]).abs() <= 1e-12, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn dot4_bitwise_matches_dot() {
        // Awkward lengths (not multiples of 4) exercise the tail path; 23
        // takes the SIMD path on AVX2 hosts, 5 stays scalar.
        for n in [5usize, 23] {
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| {
                    (0..n)
                        .map(|i| ((i * 7 + r * 13 + 1) as f64).sin() * 3.7)
                        .collect()
                })
                .collect();
            let b: Vec<f64> = (0..n).map(|i| ((i * 3 + 2) as f64).cos() * 1.9).collect();
            let fused = dot4(&rows[0], &rows[1], &rows[2], &rows[3], &b);
            for r in 0..4 {
                assert_eq!(
                    fused[r],
                    dot(&rows[r], &b),
                    "n={n} row {r} not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn axpy4_bitwise_matches_sequential_axpy() {
        // 19 takes the SIMD path on AVX2 hosts, 6 stays scalar; both must
        // match four sequential axpy calls bit for bit.
        for n in [6usize, 19] {
            let alpha = [0.3, -1.7, 2.9, 0.01];
            let rows: Vec<Vec<f64>> = (0..4)
                .map(|r| (0..n).map(|i| ((i + r * 5) as f64).sin()).collect())
                .collect();
            let mut fused: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            let mut seq = fused.clone();
            axpy4(alpha, &rows[0], &rows[1], &rows[2], &rows[3], &mut fused);
            for r in 0..4 {
                axpy(alpha[r], &rows[r], &mut seq);
            }
            assert_eq!(fused, seq, "n={n}");
        }
    }

    #[test]
    fn norms_known_values() {
        let x = [3.0, -4.0];
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm2_sq(&x), 25.0);
        assert_eq!(norm1(&x), 7.0);
        assert_eq!(norm_inf(&x), 4.0);
    }

    #[test]
    fn normalize_unit_length_and_zero_vector() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);

        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn dist_sq_symmetry() {
        let a = [1.0, 2.0];
        let b = [4.0, 6.0];
        assert_eq!(dist_sq(&a, &b), 25.0);
        assert_eq!(dist_sq(&b, &a), 25.0);
    }

    #[test]
    fn orthogonalize_removes_component() {
        let e1 = [1.0, 0.0, 0.0];
        let e2 = [0.0, 1.0, 0.0];
        let mut v = vec![3.0, 4.0, 5.0];
        orthogonalize_against(&mut v, &[&e1, &e2]);
        assert!(v[0].abs() < 1e-12);
        assert!(v[1].abs() < 1e-12);
        assert!((v[2] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, 2.0];
        let b = [0.5, -0.5];
        assert_eq!(sub(&add(&a, &b), &b), a.to_vec());
    }

    #[test]
    fn all_finite_detects_nan() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}
