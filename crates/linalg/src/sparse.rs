//! Sparse vector representation.
//!
//! High-dimensional streams (bag-of-words, binary bioassay features) are
//! often ≤1% dense. [`SparseVec`] lets sketch updates and score evaluations
//! run in `O(nnz)` instead of `O(d)` where the algorithm permits it.

use crate::vecops;

/// A sparse `d`-dimensional vector: sorted unique indices plus values.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Builds a sparse vector from `(index, value)` pairs.
    ///
    /// Pairs are sorted; zero values are dropped; duplicate indices are
    /// summed.
    ///
    /// # Panics
    /// Panics when any index is `≥ dim` or `dim` exceeds `u32::MAX`.
    pub fn from_pairs(dim: usize, pairs: impl IntoIterator<Item = (usize, f64)>) -> Self {
        assert!(dim <= u32::MAX as usize, "dimension exceeds u32 range");
        let mut entries: Vec<(u32, f64)> = pairs
            .into_iter()
            .map(|(i, v)| {
                assert!(i < dim, "index {i} out of bounds for dimension {dim}");
                (i as u32, v)
            })
            .collect();
        entries.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if let Some(&last) = indices.last() {
                if last == i {
                    *values.last_mut().expect("parallel arrays") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Drop entries that became zero after duplicate merging.
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                out_i.push(i);
                out_v.push(v);
            }
        }
        Self {
            dim,
            indices: out_i,
            values: out_v,
        }
    }

    /// Builds a sparse view of a dense slice (drops zeros).
    pub fn from_dense(dense: &[f64]) -> Self {
        let pairs = dense
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v));
        Self::from_pairs(dense.len(), pairs)
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Iterator over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .zip(self.values.iter())
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Squared Euclidean norm.
    pub fn norm2_sq(&self) -> f64 {
        vecops::dot(&self.values, &self.values)
    }

    /// Dot product against a dense vector: `O(nnz)`.
    ///
    /// # Panics
    /// Panics when `dense.len() != dim`.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// `dense ← dense + alpha * self`: `O(nnz)`.
    ///
    /// # Panics
    /// Panics when `dense.len() != dim`.
    pub fn axpy_into(&self, alpha: f64, dense: &mut [f64]) {
        assert_eq!(dense.len(), self.dim, "dimension mismatch");
        for (i, v) in self.iter() {
            dense[i] += alpha * v;
        }
    }

    /// Materializes a dense copy.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(10, vec![(5, 1.0), (2, 3.0), (5, 2.0), (7, 0.0)]);
        assert_eq!(v.nnz(), 2);
        let pairs: Vec<(usize, f64)> = v.iter().collect();
        assert_eq!(pairs, vec![(2, 3.0), (5, 3.0)]);
    }

    #[test]
    fn duplicate_cancellation_removes_entry() {
        let v = SparseVec::from_pairs(4, vec![(1, 2.0), (1, -2.0)]);
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_rejected() {
        SparseVec::from_pairs(3, vec![(3, 1.0)]);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let v = SparseVec::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
        assert_eq!(v.dim(), 5);
    }

    #[test]
    fn dot_and_axpy_match_dense_ops() {
        let dense = vec![0.0, 2.0, 0.0, 3.0];
        let v = SparseVec::from_dense(&dense);
        let other = vec![1.0, 10.0, 100.0, 1000.0];
        assert_eq!(v.dot_dense(&other), 2.0 * 10.0 + 3.0 * 1000.0);
        let mut acc = vec![1.0; 4];
        v.axpy_into(2.0, &mut acc);
        assert_eq!(acc, vec![1.0, 5.0, 1.0, 7.0]);
    }

    #[test]
    fn norm_is_exact() {
        let v = SparseVec::from_pairs(100, vec![(3, 3.0), (50, 4.0)]);
        assert_eq!(v.norm2_sq(), 25.0);
    }
}
