//! Thin singular value decomposition.
//!
//! Two routes are provided:
//!
//! * [`svd_thin`] — the *Gram route*: eigendecompose the smaller of `A Aᵀ`
//!   or `Aᵀ A` with Jacobi, then recover the other factor. For the
//!   short-and-wide sketch matrices in this project (ℓ ≪ d) this costs
//!   `O(ℓ²d + ℓ³)` and is the default. It loses accuracy for singular values
//!   below `√ε·σ₁`, which is irrelevant for top-k extraction with k ≪ ℓ.
//! * [`svd_jacobi`] — one-sided Jacobi on the columns; slower but accurate to
//!   full precision for all singular values. Kept as the reference
//!   implementation and for the `svd_routes` ablation bench.

use crate::error::{LinAlgError, Result};
use crate::matrix::Matrix;
use crate::rng::{random_unit_vector, seeded_rng};
use crate::vecops;

/// Thin SVD `A = U diag(s) Vᵀ` with `U: m×r`, `s: r`, `Vᵀ: r×n`, `r = min(m,n)`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns).
    pub u: Matrix,
    /// Singular values in descending order (non-negative).
    pub s: Vec<f64>,
    /// Right singular vectors (rows of `vt`).
    pub vt: Matrix,
}

impl Svd {
    /// Effective numerical rank: number of singular values above
    /// `rel_tol * s[0]`.
    pub fn rank(&self, rel_tol: f64) -> usize {
        if self.s.is_empty() || self.s[0] <= 0.0 {
            return 0;
        }
        let thresh = rel_tol * self.s[0];
        self.s.iter().take_while(|&&v| v > thresh).count()
    }

    /// Reconstructs `U diag(s) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for (j, &sv) in self.s.iter().enumerate() {
                us[(i, j)] *= sv;
            }
        }
        us.matmul(&self.vt).expect("shape by construction")
    }

    /// Truncates to the top `k` singular triplets (`k` is clamped to `r`).
    pub fn truncate(&self, k: usize) -> Svd {
        let k = k.min(self.s.len());
        let mut u = Matrix::zeros(self.u.rows(), k);
        for i in 0..self.u.rows() {
            for j in 0..k {
                u[(i, j)] = self.u[(i, j)];
            }
        }
        Svd {
            u,
            s: self.s[..k].to_vec(),
            vt: self.vt.top_rows(k),
        }
    }
}

/// Relative cutoff below which singular values are treated as zero when
/// recovering the paired factor.
const SIGMA_REL_TOL: f64 = 1e-10;

/// Thin SVD via the Gram route (default, fast for ℓ ≪ d sketches).
///
/// # Errors
/// * [`LinAlgError::EmptyInput`] for an empty matrix.
/// * [`LinAlgError::NotFinite`] for NaN/inf input.
/// * Propagates eigensolver failures.
pub fn svd_thin(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinAlgError::EmptyInput { op: "svd_thin" });
    }
    if !a.all_finite() {
        return Err(LinAlgError::NotFinite { op: "svd_thin" });
    }

    if m <= n {
        // Eigendecompose A Aᵀ (m×m): A Aᵀ = U diag(σ²) Uᵀ.
        let g = a.outer_gram();
        let eig = crate::eigen::eigen_sym(&g)?;
        let s: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = eig.vectors; // m×m, columns are left singular vectors
                             // Recover Vᵀ rows: vᵢ = Aᵀ uᵢ / σᵢ.
        let ut = u.transpose(); // m×m; row i = uᵢ
        let mut vt = ut.matmul(a)?; // m×n; row i = uᵢᵀ A = σᵢ vᵢᵀ
        let sigma_max = s.first().copied().unwrap_or(0.0);
        let tol = SIGMA_REL_TOL * sigma_max.max(f64::MIN_POSITIVE);
        let mut degenerate = Vec::new();
        for (i, &si) in s.iter().enumerate().take(m) {
            if si > tol {
                vecops::scale(1.0 / si, vt.row_mut(i));
            } else {
                degenerate.push(i);
            }
        }
        complete_rows(&mut vt, &degenerate, 0x5eed_57d0);
        Ok(Svd { u, s, vt })
    } else {
        // Eigendecompose Aᵀ A (n×n): Aᵀ A = V diag(σ²) Vᵀ.
        let g = a.gram();
        let eig = crate::eigen::eigen_sym(&g)?;
        let s: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors; // n×n, columns are right singular vectors
                             // Recover U columns: uᵢ = A vᵢ / σᵢ.
        let mut u = a.matmul(&v)?; // m×n; column i = A vᵢ = σᵢ uᵢ
        let sigma_max = s.first().copied().unwrap_or(0.0);
        let tol = SIGMA_REL_TOL * sigma_max.max(f64::MIN_POSITIVE);
        let mut degenerate = Vec::new();
        for j in 0..n {
            if s[j] > tol {
                let inv = 1.0 / s[j];
                for i in 0..m {
                    u[(i, j)] *= inv;
                }
            } else {
                degenerate.push(j);
            }
        }
        complete_cols(&mut u, &degenerate, 0x5eed_57d1);
        Ok(Svd {
            u,
            s,
            vt: v.transpose(),
        })
    }
}

/// Thin SVD of `a` truncated to the top `k` triplets.
///
/// # Errors
/// See [`svd_thin`]; additionally `k = 0` is invalid.
pub fn top_k_svd(a: &Matrix, k: usize) -> Result<Svd> {
    if k == 0 {
        return Err(LinAlgError::InvalidParameter {
            op: "top_k_svd",
            message: "k must be positive",
        });
    }
    Ok(svd_thin(a)?.truncate(k))
}

/// Maximum one-sided Jacobi sweeps.
const MAX_ONESIDED_SWEEPS: usize = 64;

/// Thin SVD via one-sided Jacobi rotations (reference implementation).
///
/// # Errors
/// Same conditions as [`svd_thin`], plus [`LinAlgError::NoConvergence`] when
/// the sweep budget is exhausted.
pub fn svd_jacobi(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinAlgError::EmptyInput { op: "svd_jacobi" });
    }
    if !a.all_finite() {
        return Err(LinAlgError::NotFinite { op: "svd_jacobi" });
    }
    if m < n {
        // Work on the transpose and swap the factors.
        let svd = svd_jacobi(&a.transpose())?;
        return Ok(Svd {
            u: svd.vt.transpose(),
            s: svd.s,
            vt: svd.u.transpose(),
        });
    }

    let mut b = a.clone(); // m×n, columns will be rotated to orthogonality
    let mut v = Matrix::identity(n);
    let eps = 1e-15;

    let mut converged = false;
    for _sweep in 0..MAX_ONESIDED_SWEEPS {
        let mut rotated = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = 0.0;
                for i in 0..m {
                    let bp = b[(i, p)];
                    let bq = b[(i, q)];
                    alpha += bp * bp;
                    beta += bq * bq;
                    gamma += bp * bq;
                }
                if gamma.abs() <= eps * (alpha * beta).sqrt() || gamma == 0.0 {
                    continue;
                }
                rotated = true;
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = {
                    let sign = if zeta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (zeta.abs() + (1.0 + zeta * zeta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s_rot = c * t;
                for i in 0..m {
                    let bp = b[(i, p)];
                    let bq = b[(i, q)];
                    b[(i, p)] = c * bp - s_rot * bq;
                    b[(i, q)] = s_rot * bp + c * bq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s_rot * vq;
                    v[(i, q)] = s_rot * vp + c * vq;
                }
            }
        }
        if !rotated {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinAlgError::NoConvergence {
            op: "svd_jacobi",
            iterations: MAX_ONESIDED_SWEEPS,
        });
    }

    // Extract singular values (column norms) and sort descending.
    let mut sigma: Vec<(f64, usize)> = (0..n)
        .map(|j| {
            let norm = (0..m).map(|i| b[(i, j)] * b[(i, j)]).sum::<f64>().sqrt();
            (norm, j)
        })
        .collect();
    sigma.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite norms"));

    let s: Vec<f64> = sigma.iter().map(|&(v, _)| v).collect();
    let sigma_max = s.first().copied().unwrap_or(0.0);
    let tol = SIGMA_REL_TOL * sigma_max.max(f64::MIN_POSITIVE);

    let mut u = Matrix::zeros(m, n);
    let mut vt = Matrix::zeros(n, n);
    let mut degenerate_u = Vec::new();
    for (new_j, &(norm, old_j)) in sigma.iter().enumerate() {
        if norm > tol {
            let inv = 1.0 / norm;
            for i in 0..m {
                u[(i, new_j)] = b[(i, old_j)] * inv;
            }
        } else {
            degenerate_u.push(new_j);
        }
        for i in 0..n {
            vt[(new_j, i)] = v[(i, old_j)];
        }
    }
    complete_cols(&mut u, &degenerate_u, 0x5eed_57d2);

    Ok(Svd { u, s, vt })
}

/// Replaces the rows listed in `degenerate` with unit vectors orthonormal to
/// all other rows (deterministic given `seed`).
fn complete_rows(m: &mut Matrix, degenerate: &[usize], seed: u64) {
    if degenerate.is_empty() {
        return;
    }
    let mut rng = seeded_rng(seed);
    let cols = m.cols();
    // Rows still pending replacement: must not be orthogonalized against,
    // since they hold stale (unnormalized) data. Once filled, a degenerate
    // row becomes a valid basis row for subsequent candidates.
    let mut pending: Vec<usize> = degenerate.to_vec();
    for &row in degenerate {
        loop {
            let mut cand = random_unit_vector(&mut rng, cols);
            // Two Gram–Schmidt passes for robustness.
            for _ in 0..2 {
                for other in 0..m.rows() {
                    if pending.contains(&other) {
                        continue;
                    }
                    let c = vecops::dot(&cand, m.row(other));
                    let other_row = m.row(other).to_vec();
                    vecops::axpy(-c, &other_row, &mut cand);
                }
            }
            if vecops::normalize(&mut cand) > 1e-8 {
                m.set_row(row, &cand);
                pending.retain(|&r| r != row);
                break;
            }
        }
    }
}

/// Replaces the columns listed in `degenerate` with unit vectors orthonormal
/// to all other columns (deterministic given `seed`).
fn complete_cols(m: &mut Matrix, degenerate: &[usize], seed: u64) {
    if degenerate.is_empty() {
        return;
    }
    let mut t = m.transpose();
    complete_rows(&mut t, degenerate, seed);
    *m = t.transpose();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_matrix, random_orthonormal_rows, seeded_rng};

    fn check_svd(a: &Matrix, svd: &Svd, tol: f64) {
        let (m, n) = a.shape();
        let r = m.min(n);
        assert_eq!(svd.u.shape(), (m, r));
        assert_eq!(svd.s.len(), r);
        assert_eq!(svd.vt.shape(), (r, n));
        // Non-negative, descending.
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "not descending: {:?}", svd.s);
        }
        assert!(svd.s.iter().all(|&v| v >= 0.0));
        // Reconstruction.
        let rec = svd.reconstruct();
        let err = rec.sub(a).unwrap().max_abs();
        assert!(err < tol, "reconstruction error {err} (tol {tol})");
        // Orthonormality.
        let utu = svd.u.tr_matmul(&svd.u).unwrap();
        assert!(utu.sub(&Matrix::identity(r)).unwrap().max_abs() < tol);
        let vvt = svd.vt.matmul(&svd.vt.transpose()).unwrap();
        assert!(vvt.sub(&Matrix::identity(r)).unwrap().max_abs() < tol);
    }

    #[test]
    fn svd_thin_wide_random() {
        let mut rng = seeded_rng(101);
        let a = gaussian_matrix(&mut rng, 12, 40, 1.0);
        let svd = svd_thin(&a).unwrap();
        check_svd(&a, &svd, 1e-8);
    }

    #[test]
    fn svd_thin_tall_random() {
        let mut rng = seeded_rng(102);
        let a = gaussian_matrix(&mut rng, 40, 12, 1.0);
        let svd = svd_thin(&a).unwrap();
        check_svd(&a, &svd, 1e-8);
    }

    #[test]
    fn svd_thin_square_random() {
        let mut rng = seeded_rng(103);
        let a = gaussian_matrix(&mut rng, 15, 15, 2.0);
        let svd = svd_thin(&a).unwrap();
        check_svd(&a, &svd, 1e-8);
    }

    #[test]
    fn svd_known_diagonal() {
        let a = Matrix::from_diag(&[3.0, 5.0, 1.0]);
        let svd = svd_thin(&a).unwrap();
        assert!((svd.s[0] - 5.0).abs() < 1e-10);
        assert!((svd.s[1] - 3.0).abs() < 1e-10);
        assert!((svd.s[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn svd_rank_deficient_completes_basis() {
        // Rank-1 matrix, 3×4: remaining singular vectors must still be orthonormal.
        let mut a = Matrix::zeros(3, 4);
        for j in 0..4 {
            a[(0, j)] = 1.0;
            a[(1, j)] = 2.0;
            a[(2, j)] = -1.0;
        }
        let svd = svd_thin(&a).unwrap();
        check_svd(&a, &svd, 1e-8);
        assert_eq!(svd.rank(1e-8), 1);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(3, 5);
        let svd = svd_thin(&a).unwrap();
        assert!(svd.s.iter().all(|&v| v == 0.0));
        assert_eq!(svd.rank(1e-8), 0);
        // Completed singular vectors remain orthonormal.
        let utu = svd.u.tr_matmul(&svd.u).unwrap();
        assert!(utu.sub(&Matrix::identity(3)).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn svd_jacobi_matches_gram_route() {
        let mut rng = seeded_rng(104);
        let a = gaussian_matrix(&mut rng, 10, 24, 1.0);
        let s1 = svd_thin(&a).unwrap();
        let s2 = svd_jacobi(&a).unwrap();
        check_svd(&a, &s2, 1e-9);
        for (a1, a2) in s1.s.iter().zip(s2.s.iter()) {
            assert!((a1 - a2).abs() < 1e-7, "σ mismatch {a1} vs {a2}");
        }
    }

    #[test]
    fn svd_jacobi_tall() {
        let mut rng = seeded_rng(105);
        let a = gaussian_matrix(&mut rng, 30, 8, 1.0);
        let svd = svd_jacobi(&a).unwrap();
        check_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn singular_values_match_gram_eigenvalues() {
        let mut rng = seeded_rng(106);
        let a = gaussian_matrix(&mut rng, 9, 20, 1.0);
        let svd = svd_thin(&a).unwrap();
        let g = a.gram();
        let eig = crate::eigen::jacobi_eigen_sym(&g).unwrap();
        for i in 0..9 {
            let want = eig.values[i].max(0.0).sqrt();
            assert!((svd.s[i] - want).abs() < 1e-7);
        }
    }

    #[test]
    fn truncate_keeps_top_triplets() {
        let mut rng = seeded_rng(107);
        let a = gaussian_matrix(&mut rng, 10, 10, 1.0);
        let svd = svd_thin(&a).unwrap();
        let t = svd.truncate(3);
        assert_eq!(t.s.len(), 3);
        assert_eq!(t.u.shape(), (10, 3));
        assert_eq!(t.vt.shape(), (3, 10));
        assert_eq!(&t.s[..], &svd.s[..3]);
        // Truncation beyond r clamps.
        let t2 = svd.truncate(99);
        assert_eq!(t2.s.len(), 10);
    }

    #[test]
    fn top_k_svd_low_rank_recovery() {
        // Planted rank-3 matrix: top-3 SVD must reconstruct it.
        let mut rng = seeded_rng(108);
        let u = random_orthonormal_rows(&mut rng, 3, 20).transpose(); // 20×3
        let vt = random_orthonormal_rows(&mut rng, 3, 30); // 3×30
        let d = Matrix::from_diag(&[10.0, 5.0, 2.0]);
        let a = u.matmul(&d).unwrap().matmul(&vt).unwrap();
        let svd = top_k_svd(&a, 3).unwrap();
        assert!((svd.s[0] - 10.0).abs() < 1e-8);
        assert!((svd.s[1] - 5.0).abs() < 1e-8);
        assert!((svd.s[2] - 2.0).abs() < 1e-8);
        let rec = svd.reconstruct();
        assert!(rec.sub(&a).unwrap().max_abs() < 1e-8);
    }

    #[test]
    fn top_k_rejects_zero_k() {
        assert!(top_k_svd(&Matrix::identity(3), 0).is_err());
    }

    #[test]
    fn svd_rejects_empty_and_nan() {
        assert!(svd_thin(&Matrix::zeros(0, 2)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::INFINITY;
        assert!(svd_thin(&a).is_err());
        assert!(svd_jacobi(&a).is_err());
    }
}
