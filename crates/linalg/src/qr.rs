//! Householder QR decomposition.
//!
//! `qr_thin` computes the economy-size factorization `A = Q R` where `A` is
//! `m × n`, `Q` is `m × k` with orthonormal columns, `R` is `k × n` upper
//! triangular, and `k = min(m, n)`. Householder reflections give
//! unconditional numerical stability, which matters for the frequent-
//! directions shrink step operating on nearly rank-deficient buffers.

use crate::error::{LinAlgError, Result};
use crate::matrix::Matrix;

/// Result of a thin QR factorization.
#[derive(Debug, Clone)]
pub struct QrThin {
    /// `m × k` matrix with orthonormal columns.
    pub q: Matrix,
    /// `k × n` upper-triangular factor.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a`.
///
/// # Errors
/// * [`LinAlgError::EmptyInput`] when `a` has zero rows or columns.
/// * [`LinAlgError::NotFinite`] when `a` contains NaN/inf.
pub fn qr_thin(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let qr = qr_decompose(a)?;
    Ok((qr.q, qr.r))
}

/// Computes the thin QR factorization of `a`, returning a [`QrThin`].
///
/// # Errors
/// See [`qr_thin`].
pub fn qr_decompose(a: &Matrix) -> Result<QrThin> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinAlgError::EmptyInput { op: "qr_thin" });
    }
    if !a.all_finite() {
        return Err(LinAlgError::NotFinite { op: "qr_thin" });
    }
    let k = m.min(n);

    // Work on a copy of A; reflectors are stored densely (one per column).
    let mut r = a.clone();
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(k);

    for j in 0..k {
        // Build the Householder vector for column j, rows j..m.
        let mut v = vec![0.0; m - j];
        for i in j..m {
            v[i - j] = r[(i, j)];
        }
        let alpha = {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if v[0] >= 0.0 {
                -norm
            } else {
                norm
            }
        };
        if alpha == 0.0 {
            // Column already zero below (and at) the diagonal; identity reflector.
            reflectors.push(vec![0.0; m - j]);
            continue;
        }
        v[0] -= alpha;
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            reflectors.push(vec![0.0; m - j]);
            continue;
        }

        // Apply H = I - 2 v vᵀ / (vᵀv) to R[j.., j..].
        for col in j..n {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * r[(i, col)];
            }
            let beta = 2.0 * dot / vnorm_sq;
            for i in j..m {
                r[(i, col)] -= beta * v[i - j];
            }
        }
        reflectors.push(v);
    }

    // Zero out strictly-lower-triangular entries left as rounding noise and
    // shrink R to k × n.
    let mut r_out = Matrix::zeros(k, n);
    for i in 0..k {
        for j in i..n {
            r_out[(i, j)] = r[(i, j)];
        }
    }

    // Form Q = H_0 H_1 … H_{k-1} · I_{m×k} by applying reflectors in reverse.
    let mut q = Matrix::zeros(m, k);
    for i in 0..k {
        q[(i, i)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &reflectors[j];
        let vnorm_sq: f64 = v.iter().map(|x| x * x).sum();
        if vnorm_sq <= f64::MIN_POSITIVE {
            continue;
        }
        for col in 0..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i - j] * q[(i, col)];
            }
            let beta = 2.0 * dot / vnorm_sq;
            for i in j..m {
                q[(i, col)] -= beta * v[i - j];
            }
        }
    }

    Ok(QrThin { q, r: r_out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{gaussian_matrix, seeded_rng};

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        let diff = a.sub(b).unwrap();
        assert!(
            diff.max_abs() < tol,
            "matrices differ by {} (tol {tol})",
            diff.max_abs()
        );
    }

    fn check_qr(a: &Matrix, tol: f64) {
        let (q, r) = qr_thin(a).unwrap();
        let k = a.rows().min(a.cols());
        assert_eq!(q.shape(), (a.rows(), k));
        assert_eq!(r.shape(), (k, a.cols()));
        // Reconstruction.
        let qr = q.matmul(&r).unwrap();
        assert_close(&qr, a, tol);
        // Orthonormal columns: QᵀQ = I.
        let qtq = q.tr_matmul(&q).unwrap();
        assert_close(&qtq, &Matrix::identity(k), tol);
        // R upper triangular.
        for i in 0..k {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let a = Matrix::identity(5);
        check_qr(&a, 1e-12);
    }

    #[test]
    fn qr_tall_random() {
        let mut rng = seeded_rng(11);
        let a = gaussian_matrix(&mut rng, 40, 10, 1.0);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn qr_wide_random() {
        let mut rng = seeded_rng(12);
        let a = gaussian_matrix(&mut rng, 8, 30, 1.0);
        check_qr(&a, 1e-10);
    }

    #[test]
    fn qr_square_random() {
        let mut rng = seeded_rng(13);
        let a = gaussian_matrix(&mut rng, 16, 16, 3.0);
        check_qr(&a, 1e-9);
    }

    #[test]
    fn qr_rank_deficient() {
        // Two identical columns: rank 1; factorization must still reconstruct.
        let a = Matrix::from_vec(3, 2, vec![1., 1., 2., 2., 3., 3.]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert_close(&qr, &a, 1e-12);
    }

    #[test]
    fn qr_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let (q, r) = qr_thin(&a).unwrap();
        let qr = q.matmul(&r).unwrap();
        assert_close(&qr, &a, 1e-15);
    }

    #[test]
    fn qr_rejects_empty_and_nonfinite() {
        assert!(qr_thin(&Matrix::zeros(0, 3)).is_err());
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(qr_thin(&a).is_err());
    }

    #[test]
    fn qr_single_column() {
        let a = Matrix::from_vec(3, 1, vec![3.0, 0.0, 4.0]).unwrap();
        let (q, r) = qr_thin(&a).unwrap();
        assert!((r[(0, 0)].abs() - 5.0).abs() < 1e-12);
        let qr = q.matmul(&r).unwrap();
        assert_close(&qr, &a, 1e-12);
    }
}
