//! Property-based tests for the linear-algebra substrate.

use proptest::prelude::*;
use sketchad_linalg::eigen::jacobi_eigen_sym;
use sketchad_linalg::power::spectral_norm;
use sketchad_linalg::qr::qr_thin;
use sketchad_linalg::svd::svd_thin;
use sketchad_linalg::vecops;
use sketchad_linalg::Matrix;

/// Strategy: a matrix with bounded entries and small-but-varied shape.
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

/// Strategy: a symmetric matrix built as M + Mᵀ.
fn symmetric_strategy(max_n: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_n).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * n).prop_map(move |data| {
            let m = Matrix::from_vec(n, n, data).unwrap();
            m.add(&m.transpose()).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(a in matrix_strategy(12, 12)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(6, 6),
        bdata in prop::collection::vec(-10.0f64..10.0, 36),
        cdata in prop::collection::vec(-10.0f64..10.0, 36),
    ) {
        let n = a.cols();
        let b = Matrix::from_vec(n, 6, bdata[..n * 6].to_vec()).unwrap();
        let c = Matrix::from_vec(6, 4, cdata[..24].to_vec()).unwrap();
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let diff = left.sub(&right).unwrap().max_abs();
        let scale = left.max_abs().max(1.0);
        prop_assert!(diff / scale < 1e-10, "assoc diff {}", diff);
    }

    #[test]
    fn gram_is_psd(a in matrix_strategy(10, 8)) {
        let g = a.gram();
        prop_assert!(g.is_symmetric(1e-9 * g.max_abs().max(1.0)));
        // xᵀGx >= 0 for a few deterministic probes.
        let d = g.rows();
        for probe in 0..3usize {
            let x: Vec<f64> = (0..d).map(|i| ((i + probe * 7 + 1) as f64).sin()).collect();
            let gx = g.matvec(&x);
            let quad = vecops::dot(&x, &gx);
            prop_assert!(quad >= -1e-8 * g.max_abs().max(1.0), "quad {}", quad);
        }
    }

    #[test]
    fn qr_reconstructs_and_orthogonal(a in matrix_strategy(10, 10)) {
        let (q, r) = qr_thin(&a).unwrap();
        let rec = q.matmul(&r).unwrap();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rec.sub(&a).unwrap().max_abs() / scale < 1e-9);
        let k = a.rows().min(a.cols());
        let qtq = q.tr_matmul(&q).unwrap();
        prop_assert!(qtq.sub(&Matrix::identity(k)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn svd_reconstructs(a in matrix_strategy(9, 9)) {
        let svd = svd_thin(&a).unwrap();
        let rec = svd.reconstruct();
        let scale = a.max_abs().max(1.0);
        prop_assert!(rec.sub(&a).unwrap().max_abs() / scale < 1e-7,
            "svd reconstruction error {}", rec.sub(&a).unwrap().max_abs());
        // Singular values descending and non-negative.
        for w in svd.s.windows(2) {
            prop_assert!(w[0] + 1e-12 >= w[1]);
        }
        prop_assert!(svd.s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn svd_frobenius_identity(a in matrix_strategy(8, 10)) {
        // ‖A‖_F² == Σ σᵢ².
        let svd = svd_thin(&a).unwrap();
        let sum_sq: f64 = svd.s.iter().map(|v| v * v).sum();
        let fro = a.squared_frobenius_norm();
        prop_assert!((sum_sq - fro).abs() / fro.max(1.0) < 1e-8);
    }

    #[test]
    fn jacobi_eigen_trace_identity(s in symmetric_strategy(8)) {
        // tr(S) == Σ λᵢ and eigenvectors are orthonormal.
        let e = jacobi_eigen_sym(&s).unwrap();
        let trace: f64 = (0..s.rows()).map(|i| s[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() / trace.abs().max(1.0) < 1e-9);
        let n = s.rows();
        let vtv = e.vectors.tr_matmul(&e.vectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(n)).unwrap().max_abs() < 1e-9);
    }

    #[test]
    fn spectral_norm_bounded_by_frobenius(a in matrix_strategy(8, 8)) {
        let s2 = spectral_norm(&a, 200, 99);
        let fro = a.frobenius_norm();
        prop_assert!(s2 <= fro * (1.0 + 1e-9), "spectral {} > frobenius {}", s2, fro);
        // And at least fro / sqrt(rank) >= fro / sqrt(min dim).
        let r = a.rows().min(a.cols()) as f64;
        prop_assert!(s2 * r.sqrt() >= fro * (1.0 - 1e-6));
    }

    #[test]
    fn dot_cauchy_schwarz(
        x in prop::collection::vec(-50.0f64..50.0, 1..40),
        y in prop::collection::vec(-50.0f64..50.0, 1..40),
    ) {
        let n = x.len().min(y.len());
        let (x, y) = (&x[..n], &y[..n]);
        let d = vecops::dot(x, y).abs();
        let bound = vecops::norm2(x) * vecops::norm2(y);
        prop_assert!(d <= bound * (1.0 + 1e-12));
    }
}
