//! Live telemetry for a running [`ServeEngine`](crate::ServeEngine):
//! periodic sampling of every shard's shared counters and recorder into
//! bounded time series, optionally exported over a zero-dependency
//! Prometheus endpoint and a JSONL flight recorder.
//!
//! The sampler is a pure reader. It never takes a queue lock, never pauses
//! a worker, and never touches a detector: it reads the relaxed atomics in
//! each shard's `ShardShared` and (on instrumented engines) snapshots the
//! per-shard [`MetricsRecorder`]s — the same brief mutex the workers
//! already take per point. Scores are bitwise identical with the sampler
//! running; the workspace `telemetry` integration tests assert exactly
//! that.
//!
//! ## The conservation identity, live
//!
//! At quiesce the pipeline guarantees
//! `processed + dropped + rejected + shed + crash_lost == submitted`
//! exactly. A live sample cannot: the counters are independent atomics read
//! at different instants while submissions race, and a slot is reserved in
//! `depth` *before* the matching enqueue lands. Every frame therefore
//! carries `conservation_lag` (submitted minus everything accounted for,
//! including in-queue depth) together with `conservation_ok`, which is
//! `1.0` while the lag stays inside the race window
//! `shards × (max_batch + 1) + 1` — each worker can be mid-batch, each
//! shard can have one reserved-but-unsent slot, and one submission can be
//! mid-flight. The final frame (taken after the workers join) must have a
//! lag of exactly zero, and the stress tests check it does.

use crate::shard::ShardShared;
use sketchad_obs::{
    FlightRecorder, FrameSink, MetricsRecorder, MetricsServer, ObsReport, Sampler, SamplerConfig,
    SeriesStore, TelemetryFrame,
};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How [`ServeEngine::start_telemetry`](crate::ServeEngine::start_telemetry)
/// samples and exports.
///
/// ```
/// use sketchad_serve::TelemetryConfig;
/// use std::time::Duration;
///
/// let config = TelemetryConfig::new()
///     .with_sample_every(Duration::from_millis(50))
///     .with_metrics_addr("127.0.0.1:0");
/// assert_eq!(config.sample_every(), Duration::from_millis(50));
/// ```
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    sample_every: Duration,
    series_capacity: usize,
    metrics_addr: Option<String>,
    flight_path: Option<PathBuf>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryConfig {
    /// Defaults: sample every 200ms, retain 600 samples per series (two
    /// minutes of history), no exporters.
    pub fn new() -> Self {
        Self {
            sample_every: Duration::from_millis(200),
            series_capacity: 600,
            metrics_addr: None,
            flight_path: None,
        }
    }

    /// Sets the sampling period (floored at 100µs by the sampler).
    pub fn with_sample_every(mut self, period: Duration) -> Self {
        self.sample_every = period;
        self
    }

    /// Sets how many samples each series retains (ring buffer, min 1).
    pub fn with_series_capacity(mut self, capacity: usize) -> Self {
        self.series_capacity = capacity;
        self
    }

    /// Serves Prometheus text exposition at `addr` (e.g. `127.0.0.1:9184`,
    /// or port `0` to let the OS pick — read the bound address back from
    /// [`TelemetryHandle::metrics_addr`]).
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Appends every sampled frame as one JSONL line (schema
    /// `sketchad-telemetry/v1`) to `path`, truncating any existing file.
    pub fn with_flight_recorder(mut self, path: impl Into<PathBuf>) -> Self {
        self.flight_path = Some(path.into());
        self
    }

    /// The configured sampling period.
    pub fn sample_every(&self) -> Duration {
        self.sample_every
    }

    /// The configured per-series retention.
    pub fn series_capacity(&self) -> usize {
        self.series_capacity
    }

    /// The configured Prometheus bind address, if any.
    pub fn metrics_addr(&self) -> Option<&str> {
        self.metrics_addr.as_deref()
    }

    /// The configured flight-recorder path, if any.
    pub fn flight_path(&self) -> Option<&Path> {
        self.flight_path.as_deref()
    }

    /// Spawns the sampler (and exporters) over `probe`. Returns the sampler
    /// — owned by the engine so `finish` can stop it at quiesce — plus the
    /// caller's handle.
    pub(crate) fn launch(&self, probe: EngineProbe) -> std::io::Result<(Sampler, TelemetryHandle)> {
        let mut sinks: Vec<Box<dyn FrameSink>> = Vec::new();
        if let Some(path) = &self.flight_path {
            sinks.push(Box::new(FlightRecorder::create(path)?));
        }
        let sampler = Sampler::spawn(
            SamplerConfig {
                period: self.sample_every,
                capacity: self.series_capacity,
            },
            move |step| probe.frame(step),
            sinks,
        );
        let store = sampler.store();
        let server = match &self.metrics_addr {
            Some(addr) => Some(MetricsServer::bind(addr.as_str(), Arc::clone(&store))?),
            None => None,
        };
        Ok((sampler, TelemetryHandle { store, server }))
    }
}

/// The caller's side of a live telemetry session: the shared
/// [`SeriesStore`] the sampler feeds, and the Prometheus endpoint when one
/// was configured. Dropping the handle stops the HTTP server; the sampler
/// itself belongs to the engine and stops at
/// [`finish`](crate::ServeEngine::finish) (after the workers quiesce, so
/// the final frame records the exact terminal state).
#[derive(Debug)]
pub struct TelemetryHandle {
    store: Arc<SeriesStore>,
    server: Option<MetricsServer>,
}

impl TelemetryHandle {
    /// The store the sampler feeds — series history, latest frame, rates.
    pub fn store(&self) -> Arc<SeriesStore> {
        Arc::clone(&self.store)
    }

    /// The bound address of the Prometheus endpoint, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.local_addr())
    }
}

/// Read-only view over the engine's shared state, moved into the sampler
/// thread. Everything here is an `Arc` to state the workers own; `frame` is
/// a pure read.
pub(crate) struct EngineProbe {
    pub shards: Vec<Arc<ShardShared>>,
    pub recorders: Vec<Option<Arc<MetricsRecorder>>>,
    pub submitted: Arc<AtomicU64>,
    pub started: Instant,
    /// Allowed |conservation_lag| on a live sample: one in-flight batch per
    /// worker, one reserved slot per shard, one mid-flight submission.
    pub slack_limit: i64,
}

impl EngineProbe {
    /// Takes one sample of the whole engine.
    pub(crate) fn frame(&self, step: u64) -> TelemetryFrame {
        let mut frame = TelemetryFrame {
            step,
            elapsed_ms: self.started.elapsed().as_millis() as u64,
            ..TelemetryFrame::default()
        };
        // Read the global submission counter *before* the per-shard
        // counters: anything submitted after this instant only makes the
        // accounted side larger, keeping the live lag one-sided-ish within
        // the documented slack either way.
        let submitted = self.submitted.load(Relaxed);
        let (mut processed, mut dropped, mut rejected) = (0u64, 0u64, 0u64);
        let (mut shed, mut crash_lost, mut restarts) = (0u64, 0u64, 0u64);
        let (mut depth, mut high_water, mut degraded) = (0u64, 0u64, 0u64);
        for shard in &self.shards {
            processed += shard.processed.load(Relaxed);
            dropped += shard.dropped.load(Relaxed);
            rejected += shard.rejected.load(Relaxed);
            shed += shard.shed.load(Relaxed);
            crash_lost += shard.crash_lost.load(Relaxed);
            restarts += shard.restarts.load(Relaxed);
            depth += shard.depth.load(Relaxed) as u64;
            high_water = high_water.max(shard.high_water.load(Relaxed) as u64);
            degraded += u64::from(shard.degraded.load(Relaxed));
        }
        frame.counters.insert("submitted".into(), submitted);
        frame.counters.insert("processed".into(), processed);
        frame.counters.insert("dropped".into(), dropped);
        frame.counters.insert("rejected".into(), rejected);
        frame.counters.insert("shed".into(), shed);
        frame.counters.insert("crash_lost".into(), crash_lost);
        frame.counters.insert("restarts".into(), restarts);
        frame.gauges.insert("queue_depth".into(), depth as f64);
        frame
            .gauges
            .insert("queue_high_water".into(), high_water as f64);
        frame
            .gauges
            .insert("degraded_shards".into(), degraded as f64);
        let accounted = processed + dropped + rejected + shed + crash_lost + depth;
        let lag = submitted as i128 - accounted as i128;
        let lag = lag.clamp(i64::MIN as i128, i64::MAX as i128) as i64;
        frame.gauges.insert("conservation_lag".into(), lag as f64);
        frame.gauges.insert(
            "conservation_ok".into(),
            f64::from(u8::from(lag.abs() <= self.slack_limit)),
        );
        // Instrumented engines also surface the recorder tier: merged
        // counters (events_dropped, snapshots_published, updates_skipped,
        // …), last gauge values (fd_error_bound, residual_energy, …), and
        // latency/refresh histogram quantiles.
        if self.recorders.iter().any(Option::is_some) {
            let mut obs = ObsReport::default();
            for recorder in self.recorders.iter().flatten() {
                obs.merge(&recorder.snapshot());
            }
            frame
                .counters
                .insert("events_dropped".into(), obs.events_dropped);
            for (label, value) in &obs.counters {
                frame.counters.insert(format!("obs_{label}"), *value);
            }
            for (label, stats) in &obs.gauges {
                if stats.last.is_finite() {
                    frame.gauges.insert(label.clone(), stats.last);
                }
            }
            for (label, hist) in &obs.hists {
                frame
                    .counters
                    .insert(format!("{label}_count"), hist.count());
                frame
                    .counters
                    .insert(format!("{label}_overflow"), hist.overflow());
                for (q, suffix) in [
                    (0.50, "p50_us"),
                    (0.90, "p90_us"),
                    (0.99, "p99_us"),
                    (0.999, "p999_us"),
                ] {
                    frame
                        .gauges
                        .insert(format!("{label}_{suffix}"), hist.quantile_us(q));
                }
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_with(shards: Vec<Arc<ShardShared>>, submitted: u64, slack: i64) -> EngineProbe {
        EngineProbe {
            shards,
            recorders: Vec::new(),
            submitted: Arc::new(AtomicU64::new(submitted)),
            started: Instant::now(),
            slack_limit: slack,
        }
    }

    #[test]
    fn quiesced_probe_reports_zero_lag() {
        let shard = Arc::new(ShardShared::default());
        shard.processed.store(90, Relaxed);
        shard.rejected.store(10, Relaxed);
        let frame = probe_with(vec![shard], 100, 1).frame(0);
        assert_eq!(frame.counter("submitted"), 100);
        assert_eq!(frame.counter("processed"), 90);
        assert_eq!(frame.counter("rejected"), 10);
        assert_eq!(frame.gauge("conservation_lag"), Some(0.0));
        assert_eq!(frame.gauge("conservation_ok"), Some(1.0));
        assert_eq!(frame.gauge("queue_depth"), Some(0.0));
    }

    #[test]
    fn lag_beyond_slack_flags_not_ok() {
        let shard = Arc::new(ShardShared::default());
        shard.processed.store(10, Relaxed);
        // 100 submitted, only 10 accounted: lag 90 with slack 3.
        let frame = probe_with(vec![shard], 100, 3).frame(0);
        assert_eq!(frame.gauge("conservation_lag"), Some(90.0));
        assert_eq!(frame.gauge("conservation_ok"), Some(0.0));
    }

    #[test]
    fn lag_within_slack_is_ok_in_both_directions() {
        // Accounted side ahead of submitted (depth reserved before send).
        let shard = Arc::new(ShardShared::default());
        shard.processed.store(50, Relaxed);
        shard.depth.store(2, Relaxed);
        let frame = probe_with(vec![shard], 50, 3).frame(0);
        assert_eq!(frame.gauge("conservation_lag"), Some(-2.0));
        assert_eq!(frame.gauge("conservation_ok"), Some(1.0));
    }

    #[test]
    fn degraded_and_high_water_are_gauges() {
        let a = Arc::new(ShardShared::default());
        let b = Arc::new(ShardShared::default());
        a.degraded.store(true, Relaxed);
        a.high_water.store(7, Relaxed);
        b.high_water.store(3, Relaxed);
        let frame = probe_with(vec![a, b], 0, 1).frame(0);
        assert_eq!(frame.gauge("degraded_shards"), Some(1.0));
        assert_eq!(frame.gauge("queue_high_water"), Some(7.0));
    }
}
