//! Error type for the serving engine.

use std::fmt;

/// Failures surfaced by [`crate::ServeEngine`].
///
/// The engine never hangs on a dead shard: a worker panic is converted into
/// [`ServeError::WorkerPanicked`] at the next submit or at `finish()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Engine was configured with zero shards or a zero-capacity queue.
    InvalidConfig(String),
    /// A submitted point's dimensionality does not match the engine's.
    DimensionMismatch {
        /// Expected dimensionality (the engine's `dim`).
        expected: usize,
        /// The submitted point's length.
        got: usize,
    },
    /// A shard's worker thread panicked; the panic payload is preserved.
    WorkerPanicked {
        /// Index of the dead shard.
        shard: usize,
        /// Stringified panic payload (`"<non-string panic>"` if opaque).
        message: String,
    },
    /// Durable state under the configured `state_dir` could not be opened,
    /// recovered, or restored for a shard.
    Durable {
        /// Index of the shard whose state failed.
        shard: usize,
        /// What went wrong (stringified [`sketchad_durable::DurableError`]
        /// or restore failure).
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::DimensionMismatch { expected, got } => {
                write!(f, "point has dimension {got}, engine expects {expected}")
            }
            ServeError::WorkerPanicked { shard, message } => {
                write!(f, "worker for shard {shard} panicked: {message}")
            }
            ServeError::Durable { shard, message } => {
                write!(f, "durable state for shard {shard} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Extracts a readable message from a `JoinHandle` panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}
