//! Bounded quarantine for rows that failed input validation.
//!
//! A row with a `NaN`/`±∞` component or the wrong dimension must never reach
//! a detector: one non-finite value folded into the sketch poisons every
//! subsequent score, and a wrong-length row panics the worker. Instead of
//! erroring the whole pipeline (the pre-fault-tolerance behaviour), the
//! engine diverts such rows here — counted, capped, and inspectable after
//! the run — while the stream keeps flowing.

use sketchad_core::InputViolation;
use std::collections::VecDeque;

/// One quarantined row: what arrived, when, and why it was refused.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// Global submission sequence number the row consumed.
    pub seq: u64,
    /// Why validation refused it.
    pub violation: InputViolation,
    /// The offending row, verbatim, for offline diagnosis.
    pub point: Vec<f64>,
}

/// A bounded drop-oldest buffer of rejected rows.
///
/// `total()` counts every rejection ever made; the retained rows are the
/// most recent `capacity` of them (`evicted()` says how many fell off), so
/// a poison flood cannot balloon memory while accounting stays exact.
#[derive(Debug, Clone)]
pub struct Quarantine {
    rows: VecDeque<QuarantinedRow>,
    capacity: usize,
    total: u64,
    evicted: u64,
}

impl Quarantine {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            rows: VecDeque::with_capacity(capacity.min(64)),
            capacity,
            total: 0,
            evicted: 0,
        }
    }

    pub(crate) fn push(&mut self, seq: u64, violation: InputViolation, point: Vec<f64>) {
        self.total += 1;
        if self.capacity == 0 {
            self.evicted += 1;
            return;
        }
        if self.rows.len() >= self.capacity {
            self.rows.pop_front();
            self.evicted += 1;
        }
        self.rows.push_back(QuarantinedRow {
            seq,
            violation,
            point,
        });
    }

    /// Every rejection ever recorded (retained or not).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rejections whose rows were discarded to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Number of rows currently retained.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing was ever quarantined *and retained*.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The retained rows, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &QuarantinedRow> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nan_violation() -> InputViolation {
        InputViolation::NonFinite { index: 0 }
    }

    #[test]
    fn bounded_drop_oldest_with_exact_totals() {
        let mut q = Quarantine::new(2);
        for seq in 0..5u64 {
            q.push(seq, nan_violation(), vec![f64::NAN]);
        }
        assert_eq!(q.total(), 5);
        assert_eq!(q.evicted(), 3);
        assert_eq!(q.len(), 2);
        let seqs: Vec<u64> = q.rows().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4], "most recent rows are retained");
    }

    #[test]
    fn zero_capacity_counts_without_retaining() {
        let mut q = Quarantine::new(0);
        q.push(9, nan_violation(), vec![f64::INFINITY]);
        assert_eq!(q.total(), 1);
        assert_eq!(q.evicted(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn rows_keep_their_payload() {
        let mut q = Quarantine::new(4);
        q.push(
            3,
            InputViolation::WrongDim {
                expected: 2,
                got: 1,
            },
            vec![1.5],
        );
        let row = q.rows().next().unwrap();
        assert_eq!(row.seq, 3);
        assert_eq!(row.point, vec![1.5]);
        assert_eq!(row.violation.label(), "wrong_dim");
    }
}
