//! # sketchad-serve
//!
//! Sharded concurrent serving engine for streaming anomaly detection —
//! std-only (threads + bounded queues), no external runtime.
//!
//! ## Write-shard / read-snapshot split
//!
//! A [`StreamingDetector`](sketchad_core::StreamingDetector) is inherently
//! a single-writer structure: `process` mutates the sketch. This crate
//! scales it two ways at once:
//!
//! * **Writes shard.** [`ServeEngine`] partitions arriving points across
//!   `N` worker shards (round-robin, or stable key-hash so a key's points
//!   always meet the same model). Each shard owns one detector behind a
//!   bounded queue with configurable backpressure — [`Block`] never loses a
//!   point, [`DropNewest`] never blocks the producer and counts what it
//!   drops, [`ShedOldest`] admits fresh points by evicting stale queued
//!   ones so the detector tracks the live stream under overload.
//! * **Reads snapshot.** Each shard periodically publishes its model as an
//!   immutable `Arc<SubspaceModel>` into a [`SnapshotCell`]; any number of
//!   [`SnapshotScorer`] handles score against the latest generation without
//!   ever touching (or waiting on) the live detector.
//!
//! ## Failure domains
//!
//! Faults are contained at the smallest boundary that can absorb them:
//!
//! * **Bad input → quarantine.** Rows with non-finite components or the
//!   wrong dimension are diverted into a bounded [`Quarantine`]
//!   ([`SubmitOutcome::Rejected`]) before they can poison a sketch.
//! * **Detector panic → shard restart.** The worker catches the panic,
//!   rebuilds its detector from the shard factory, re-adopts the last
//!   published snapshot, and keeps draining — scores accumulated before
//!   the panic survive. After `max_restarts` recoveries the shard
//!   *degrades*: updates shed with exact counts while the stale snapshot
//!   keeps serving reads. Other shards never notice.
//! * **Overload → shedding.** Besides the backpressure policies,
//!   [`ServeEngine::set_read_only`] flips the whole engine into a mode
//!   where every update is shed but snapshot reads stay available.
//!
//! Lifecycle is explicit: [`ServeEngine::finish`] closes the queues, lets
//! every worker drain, and returns a [`PipelineReport`] — scores,
//! [`PipelineStats`] with exact loss accounting
//! (`scored + dropped + rejected + shed + crash_lost == submitted`), and
//! the quarantine. Only a supervisor-level failure (the worker *thread*
//! dying, not the detector panicking) surfaces as
//! [`ServeError::WorkerPanicked`] — never as a hang.
//!
//! ## Module map
//!
//! * [`config`] — [`ServeConfig`], backpressure and partitioning policies.
//! * [`engine`] — [`ServeEngine`], submission, shutdown, report assembly.
//! * `shard` *(private)* — the supervised worker loop owning each detector,
//!   plus the off-thread model refresher
//!   ([`ServeConfig::with_async_refresh`]).
//! * `ring` *(private)* — the lock-free SPSC ingest ring (the default
//!   channel; seqlock-style per-slot counters, batch push/pop). The one
//!   module in this crate allowed to use `unsafe`; its memory-ordering
//!   contract is documented in the module and exercised under ASan in CI.
//! * `queue` *(private)* — the bounded condvar job queue, retained as the
//!   fallback channel for `ShedOldest` (sender-side eviction) and the
//!   `legacy_ingest` comparison knob.
//! * [`quarantine`] — [`Quarantine`] / [`QuarantinedRow`] for refused input.
//! * [`snapshot`] — [`SnapshotCell`] / [`SnapshotScorer`] read path.
//! * [`stats`] — [`PipelineStats`], [`LatencyHistogram`], serializable.
//! * [`telemetry`] — live sampling of a running engine into bounded time
//!   series, with optional Prometheus and JSONL flight-recorder export
//!   ([`TelemetryConfig`] / [`TelemetryHandle`], started via
//!   [`ServeEngine::start_telemetry`]).
//! * [`error`] — [`ServeError`].
//!
//! [`Block`]: BackpressurePolicy::Block
//! [`DropNewest`]: BackpressurePolicy::DropNewest
//! [`ShedOldest`]: BackpressurePolicy::ShedOldest

#![warn(missing_docs)]
// `deny`, not `forbid`: the `ring` module alone opts back in with a scoped
// `allow` for its UnsafeCell slot accesses. Everything else stays safe.
#![deny(unsafe_code)]

pub mod config;
pub mod engine;
pub mod error;
pub mod quarantine;
mod queue;
mod ring;
mod shard;
pub mod snapshot;
pub mod stats;
pub mod telemetry;

pub use config::{BackpressurePolicy, PartitionStrategy, ServeConfig};
pub use engine::{BatchOutcome, PipelineReport, ServeEngine, SubmitOutcome};
pub use error::ServeError;
pub use quarantine::{Quarantine, QuarantinedRow};
pub use sketchad_durable::FsyncPolicy;
pub use snapshot::{SnapshotCell, SnapshotScorer};
pub use stats::{LatencyHistogram, PipelineStats, ShardStats, STATS_VERSION};
pub use telemetry::{TelemetryConfig, TelemetryHandle};
