//! # sketchad-serve
//!
//! Sharded concurrent serving engine for streaming anomaly detection —
//! std-only (threads + bounded channels), no external runtime.
//!
//! ## Write-shard / read-snapshot split
//!
//! A [`StreamingDetector`](sketchad_core::StreamingDetector) is inherently
//! a single-writer structure: `process` mutates the sketch. This crate
//! scales it two ways at once:
//!
//! * **Writes shard.** [`ServeEngine`] partitions arriving points across
//!   `N` worker shards (round-robin, or stable key-hash so a key's points
//!   always meet the same model). Each shard owns one detector behind a
//!   bounded queue with configurable backpressure — [`Block`] never loses a
//!   point, [`DropNewest`] never blocks the producer and counts what it
//!   sheds.
//! * **Reads snapshot.** Each shard periodically publishes its model as an
//!   immutable `Arc<SubspaceModel>` into a [`SnapshotCell`]; any number of
//!   [`SnapshotScorer`] handles score against the latest generation without
//!   ever touching (or waiting on) the live detector.
//!
//! Lifecycle is explicit: [`ServeEngine::finish`] closes the queues, lets
//! every worker drain, and returns scores plus [`PipelineStats`] (per-shard
//! counters and an end-to-end latency histogram with p50/p99). A worker
//! panic surfaces as [`ServeError::WorkerPanicked`] at the next submit or
//! at `finish` — never as a hang.
//!
//! ## Module map
//!
//! * [`config`] — [`ServeConfig`], backpressure and partitioning policies.
//! * [`engine`] — [`ServeEngine`], submission, shutdown, report assembly.
//! * `shard` *(private)* — the worker loop owning each detector.
//! * [`snapshot`] — [`SnapshotCell`] / [`SnapshotScorer`] read path.
//! * [`stats`] — [`PipelineStats`], [`LatencyHistogram`], serializable.
//! * [`error`] — [`ServeError`].
//!
//! [`Block`]: BackpressurePolicy::Block
//! [`DropNewest`]: BackpressurePolicy::DropNewest

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod error;
mod shard;
pub mod snapshot;
pub mod stats;

pub use config::{BackpressurePolicy, PartitionStrategy, ServeConfig};
pub use engine::{BatchOutcome, PipelineReport, ServeEngine, SubmitOutcome};
pub use error::ServeError;
pub use snapshot::{SnapshotCell, SnapshotScorer};
pub use stats::{LatencyHistogram, PipelineStats, ShardStats};
