//! Pipeline observability: per-shard counters and a log-bucketed latency
//! histogram, all serializable for dashboards and benchmark artifacts.

use serde::{Deserialize, Serialize};
use sketchad_obs::ObsReport;

/// The end-to-end latency histogram is the obs crate's HDR-style
/// [`LogHistogram`](sketchad_obs::LogHistogram) as of stats v3: per-octave
/// sub-buckets give p50/p90/p99/p999 at ≤3% relative error, and
/// out-of-range observations land in an explicit `overflow` field instead
/// of being folded into the last bucket. Legacy (v≤2) artifacts — plain
/// `{"counts": [...], "total": n}` — deserialize into the same type and
/// are interpreted under the original one-bucket-per-octave scheme.
pub type LatencyHistogram = sketchad_obs::LogHistogram;

/// Schema version written into [`PipelineStats::stats_version`]. Artifacts
/// predating the field deserialize with version `0` (every new field is
/// `#[serde(default)]`, so they remain readable).
///
/// * `0` — legacy artifacts, before versioning existed.
/// * `2` — fault-tolerance accounting: per-shard and total
///   `rejected` / `shed` / `crash_lost` / `restarts`, `degraded` flags.
/// * `3` — log-bucketed latency histogram with sub-octave resolution and
///   an explicit `overflow` count; `latency_p90_us` / `latency_p999_us`
///   summary quantiles.
pub const STATS_VERSION: u32 = 3;

/// Final counters for one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Points scored by this shard's detector.
    pub processed: u64,
    /// Points dropped at this shard's full queue (`DropNewest` only).
    pub dropped: u64,
    /// Highest queue depth observed (approximate; sampled at enqueue).
    pub queue_high_water: usize,
    /// Rows routed here that input validation refused (quarantined).
    #[serde(default)]
    pub rejected: u64,
    /// Updates shed: `ShedOldest` evictions, read-only refusals, and jobs a
    /// degraded shard drained without scoring.
    #[serde(default)]
    pub shed: u64,
    /// Points consumed from the queue but unscored when the worker panicked.
    #[serde(default)]
    pub crash_lost: u64,
    /// Times the worker was restarted from its last published snapshot.
    #[serde(default)]
    pub restarts: u64,
    /// Whether the shard exhausted its restart budget and degraded to
    /// shed-with-count.
    #[serde(default)]
    pub degraded: bool,
    /// WAL rows replayed into this shard's detector during warm restart
    /// (0 for engines without a state directory, or for cold starts).
    #[serde(default)]
    pub replayed: u64,
    /// Generation of the durable snapshot this shard was restored from
    /// (0 when no snapshot existed — cold start or WAL-only recovery).
    #[serde(default)]
    pub recovered_generation: u64,
}

/// Whole-pipeline statistics, serializable as a benchmark / monitoring
/// artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Artifact schema version ([`STATS_VERSION`] when written by this
    /// build; `0` when read back from an artifact that predates the field).
    #[serde(default)]
    pub stats_version: u32,
    /// Per-shard final counters.
    pub shards: Vec<ShardStats>,
    /// Sum of per-shard `processed`.
    pub total_processed: u64,
    /// Sum of per-shard `dropped`.
    pub total_dropped: u64,
    /// Sum of per-shard `rejected` (quarantined rows).
    #[serde(default)]
    pub total_rejected: u64,
    /// Sum of per-shard `shed`.
    #[serde(default)]
    pub total_shed: u64,
    /// Sum of per-shard `crash_lost`.
    #[serde(default)]
    pub total_crash_lost: u64,
    /// Sum of per-shard worker `restarts`.
    #[serde(default)]
    pub total_restarts: u64,
    /// Indices of shards that degraded (restart budget exhausted).
    #[serde(default)]
    pub degraded_shards: Vec<usize>,
    /// Sum of per-shard `replayed` WAL rows (warm restarts only).
    #[serde(default)]
    pub total_replayed: u64,
    /// Indices of shards that warm-restarted from durable state (restored
    /// a snapshot and/or replayed WAL rows).
    #[serde(default)]
    pub recovered_shards: Vec<usize>,
    /// End-to-end (enqueue → scored) latency over all shards.
    pub latency: LatencyHistogram,
    /// Median end-to-end latency in microseconds (bucket upper bound;
    /// 0 when nothing was processed).
    pub latency_p50_us: f64,
    /// 90th-percentile end-to-end latency in microseconds (bucket upper
    /// bound; 0 when nothing was processed; absent in pre-v3 artifacts).
    #[serde(default)]
    pub latency_p90_us: f64,
    /// 99th-percentile end-to-end latency in microseconds (bucket upper
    /// bound; 0 when nothing was processed).
    pub latency_p99_us: f64,
    /// 99.9th-percentile end-to-end latency in microseconds (bucket upper
    /// bound; 0 when nothing was processed; absent in pre-v3 artifacts).
    #[serde(default)]
    pub latency_p999_us: f64,
    /// Merged per-shard observability report (spans, counters, gauges,
    /// events). `None` for engines started without instrumentation
    /// (`ServeEngine::start`); populated by
    /// `ServeEngine::start_instrumented`.
    pub obs: Option<ObsReport>,
}

impl PipelineStats {
    /// Assembles pipeline stats from per-shard results, computing the
    /// summary quantiles.
    pub fn from_shards(shards: Vec<ShardStats>, latency: LatencyHistogram) -> Self {
        let total_processed = shards.iter().map(|s| s.processed).sum();
        let total_dropped = shards.iter().map(|s| s.dropped).sum();
        let total_rejected = shards.iter().map(|s| s.rejected).sum();
        let total_shed = shards.iter().map(|s| s.shed).sum();
        let total_crash_lost = shards.iter().map(|s| s.crash_lost).sum();
        let total_restarts = shards.iter().map(|s| s.restarts).sum();
        let degraded_shards = shards
            .iter()
            .filter(|s| s.degraded)
            .map(|s| s.shard)
            .collect();
        let total_replayed = shards.iter().map(|s| s.replayed).sum();
        let recovered_shards = shards
            .iter()
            .filter(|s| s.replayed > 0 || s.recovered_generation > 0)
            .map(|s| s.shard)
            .collect();
        let us = |q: f64| {
            latency
                .quantile(q)
                .map(|d| d.as_secs_f64() * 1e6)
                .unwrap_or(0.0)
        };
        let (latency_p50_us, latency_p90_us, latency_p99_us, latency_p999_us) =
            (us(0.50), us(0.90), us(0.99), us(0.999));
        Self {
            stats_version: STATS_VERSION,
            shards,
            total_processed,
            total_dropped,
            total_rejected,
            total_shed,
            total_crash_lost,
            total_restarts,
            degraded_shards,
            total_replayed,
            recovered_shards,
            latency,
            latency_p50_us,
            latency_p90_us,
            latency_p99_us,
            latency_p999_us,
            obs: None,
        }
    }

    /// Attaches a merged observability report (builder style).
    #[must_use]
    pub fn with_obs(mut self, obs: ObsReport) -> Self {
        self.obs = Some(obs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::time::Duration;

    fn shard_stats(shard: usize, processed: u64, dropped: u64) -> ShardStats {
        ShardStats {
            shard,
            processed,
            dropped,
            queue_high_water: 4,
            rejected: 0,
            shed: 0,
            crash_lost: 0,
            restarts: 0,
            degraded: false,
            replayed: 0,
            recovered_generation: 0,
        }
    }

    #[test]
    fn pipeline_stats_aggregates_shards() {
        let shards = vec![shard_stats(0, 10, 1), shard_stats(1, 20, 0)];
        let mut lat = LatencyHistogram::new();
        for _ in 0..30 {
            lat.record(Duration::from_micros(3));
        }
        let stats = PipelineStats::from_shards(shards, lat);
        assert_eq!(stats.stats_version, STATS_VERSION);
        assert_eq!(stats.total_processed, 30);
        assert_eq!(stats.total_dropped, 1);
        assert!(stats.latency_p50_us > 0.0);
        assert!(stats.latency_p90_us >= stats.latency_p50_us);
        assert!(stats.latency_p99_us >= stats.latency_p90_us);
        assert!(stats.latency_p999_us >= stats.latency_p99_us);
    }

    #[test]
    fn fault_counters_aggregate_and_name_degraded_shards() {
        let mut healthy = shard_stats(0, 50, 0);
        healthy.rejected = 2;
        let mut flaky = shard_stats(1, 30, 0);
        flaky.shed = 5;
        flaky.crash_lost = 3;
        flaky.restarts = 2;
        flaky.degraded = true;
        let stats = PipelineStats::from_shards(vec![healthy, flaky], LatencyHistogram::new());
        assert_eq!(stats.total_rejected, 2);
        assert_eq!(stats.total_shed, 5);
        assert_eq!(stats.total_crash_lost, 3);
        assert_eq!(stats.total_restarts, 2);
        assert_eq!(stats.degraded_shards, vec![1]);
    }

    #[test]
    fn recovery_counters_aggregate_and_name_recovered_shards() {
        let cold = shard_stats(0, 50, 0);
        let mut warm = shard_stats(1, 30, 0);
        warm.replayed = 12;
        warm.recovered_generation = 3;
        let mut wal_only = shard_stats(2, 10, 0);
        wal_only.replayed = 4; // recovered with no snapshot on disk
        let stats = PipelineStats::from_shards(vec![cold, warm, wal_only], LatencyHistogram::new());
        assert_eq!(stats.total_replayed, 16);
        assert_eq!(stats.recovered_shards, vec![1, 2]);
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let mut shard = shard_stats(0, 5, 0);
        shard.shed = 1;
        shard.restarts = 1;
        let mut lat = LatencyHistogram::new();
        lat.record(Duration::from_micros(1));
        let stats = PipelineStats::from_shards(vec![shard], lat);
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn legacy_artifacts_without_fault_fields_still_parse() {
        // A verbatim pre-fault-tolerance artifact shape: no stats_version,
        // no rejected/shed/crash_lost/restarts/degraded anywhere. Old
        // `results/` JSON must stay readable by new builds.
        let legacy = r#"{
            "shards": [
                {"shard": 0, "processed": 7, "dropped": 1, "queue_high_water": 3}
            ],
            "total_processed": 7,
            "total_dropped": 1,
            "latency": {"counts": [0, 2, 5], "total": 7},
            "latency_p50_us": 1.5,
            "latency_p99_us": 2.0,
            "obs": null
        }"#;
        let stats: PipelineStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(stats.stats_version, 0, "legacy artifacts read as v0");
        assert_eq!(stats.total_processed, 7);
        // The histogram parsed into the v3 type under the legacy scheme:
        // counts interpreted as one bucket per octave, no overflow.
        assert_eq!(stats.latency.sub_bits(), 0);
        assert_eq!(stats.latency.overflow(), 0);
        assert_eq!(stats.latency.count(), 7);
        assert_eq!(
            stats.latency.quantile(1.0),
            Some(Duration::from_nanos(8)),
            "legacy bucket 2 covers [4, 8)"
        );
        assert_eq!(stats.latency_p90_us, 0.0, "pre-v3 quantiles default");
        assert_eq!(stats.total_rejected, 0);
        assert_eq!(stats.total_shed, 0);
        assert_eq!(stats.total_crash_lost, 0);
        assert_eq!(stats.total_restarts, 0);
        assert!(stats.degraded_shards.is_empty());
        let shard = &stats.shards[0];
        assert_eq!(shard.processed, 7);
        assert_eq!(shard.rejected, 0);
        assert!(!shard.degraded);
    }

    #[test]
    fn obs_report_rides_along_in_stats_json() {
        use sketchad_obs::{MetricsRecorder, Recorder, Stage};

        let rec = MetricsRecorder::new();
        rec.record_span(Stage::Score, 1_000);
        let stats = PipelineStats::from_shards(Vec::new(), LatencyHistogram::new())
            .with_obs(rec.snapshot());
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.obs.unwrap().span("score").unwrap().count, 1);
    }
}
