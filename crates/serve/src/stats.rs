//! Pipeline observability: per-shard counters and a fixed-bucket latency
//! histogram, all serializable for dashboards and benchmark artifacts.

use serde::{Deserialize, Serialize};
use sketchad_obs::ObsReport;
use std::time::Duration;

/// Number of power-of-two latency buckets. Bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` nanoseconds; 42 buckets reach ~73 minutes, far beyond
/// any sane per-point latency, so the last bucket is an overflow catch-all.
pub const LATENCY_BUCKET_COUNT: usize = 42;

/// Fixed-bucket (power-of-two, nanosecond) latency histogram.
///
/// Recording is O(1) with no allocation; merging is element-wise addition,
/// so each worker keeps a private histogram and the engine folds them
/// together at shutdown without cross-thread contention. Quantiles are
/// bucket upper bounds — at most 2× off, which is plenty for p50/p99
/// monitoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `counts[i]` = observations in `[2^i, 2^(i+1))` ns.
    counts: Vec<u64>,
    /// Total observations.
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; LATENCY_BUCKET_COUNT],
            total: 0,
        }
    }

    fn bucket_index(nanos: u128) -> usize {
        let n = nanos.max(1) as u64;
        let idx = 63 - n.leading_zeros() as usize; // floor(log2(n))
        idx.min(LATENCY_BUCKET_COUNT - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        self.counts[Self::bucket_index(latency.as_nanos())] += 1;
        self.total += 1;
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`), or `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper_ns = 1u128 << (i + 1);
                return Some(Duration::from_nanos(upper_ns.min(u64::MAX as u128) as u64));
            }
        }
        unreachable!("total is the sum of counts");
    }

    /// The raw bucket counts (index `i` covers `[2^i, 2^(i+1))` ns).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// Schema version written into [`PipelineStats::stats_version`]. Artifacts
/// predating the field deserialize with version `0` (every new field is
/// `#[serde(default)]`, so they remain readable).
///
/// * `0` — legacy artifacts, before versioning existed.
/// * `2` — fault-tolerance accounting: per-shard and total
///   `rejected` / `shed` / `crash_lost` / `restarts`, `degraded` flags.
pub const STATS_VERSION: u32 = 2;

/// Final counters for one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Points scored by this shard's detector.
    pub processed: u64,
    /// Points dropped at this shard's full queue (`DropNewest` only).
    pub dropped: u64,
    /// Highest queue depth observed (approximate; sampled at enqueue).
    pub queue_high_water: usize,
    /// Rows routed here that input validation refused (quarantined).
    #[serde(default)]
    pub rejected: u64,
    /// Updates shed: `ShedOldest` evictions, read-only refusals, and jobs a
    /// degraded shard drained without scoring.
    #[serde(default)]
    pub shed: u64,
    /// Points consumed from the queue but unscored when the worker panicked.
    #[serde(default)]
    pub crash_lost: u64,
    /// Times the worker was restarted from its last published snapshot.
    #[serde(default)]
    pub restarts: u64,
    /// Whether the shard exhausted its restart budget and degraded to
    /// shed-with-count.
    #[serde(default)]
    pub degraded: bool,
}

/// Whole-pipeline statistics, serializable as a benchmark / monitoring
/// artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Artifact schema version ([`STATS_VERSION`] when written by this
    /// build; `0` when read back from an artifact that predates the field).
    #[serde(default)]
    pub stats_version: u32,
    /// Per-shard final counters.
    pub shards: Vec<ShardStats>,
    /// Sum of per-shard `processed`.
    pub total_processed: u64,
    /// Sum of per-shard `dropped`.
    pub total_dropped: u64,
    /// Sum of per-shard `rejected` (quarantined rows).
    #[serde(default)]
    pub total_rejected: u64,
    /// Sum of per-shard `shed`.
    #[serde(default)]
    pub total_shed: u64,
    /// Sum of per-shard `crash_lost`.
    #[serde(default)]
    pub total_crash_lost: u64,
    /// Sum of per-shard worker `restarts`.
    #[serde(default)]
    pub total_restarts: u64,
    /// Indices of shards that degraded (restart budget exhausted).
    #[serde(default)]
    pub degraded_shards: Vec<usize>,
    /// End-to-end (enqueue → scored) latency over all shards.
    pub latency: LatencyHistogram,
    /// Median end-to-end latency in microseconds (bucket upper bound;
    /// 0 when nothing was processed).
    pub latency_p50_us: f64,
    /// 99th-percentile end-to-end latency in microseconds (bucket upper
    /// bound; 0 when nothing was processed).
    pub latency_p99_us: f64,
    /// Merged per-shard observability report (spans, counters, gauges,
    /// events). `None` for engines started without instrumentation
    /// (`ServeEngine::start`); populated by
    /// `ServeEngine::start_instrumented`.
    pub obs: Option<ObsReport>,
}

impl PipelineStats {
    /// Assembles pipeline stats from per-shard results, computing the
    /// summary quantiles.
    pub fn from_shards(shards: Vec<ShardStats>, latency: LatencyHistogram) -> Self {
        let total_processed = shards.iter().map(|s| s.processed).sum();
        let total_dropped = shards.iter().map(|s| s.dropped).sum();
        let total_rejected = shards.iter().map(|s| s.rejected).sum();
        let total_shed = shards.iter().map(|s| s.shed).sum();
        let total_crash_lost = shards.iter().map(|s| s.crash_lost).sum();
        let total_restarts = shards.iter().map(|s| s.restarts).sum();
        let degraded_shards = shards
            .iter()
            .filter(|s| s.degraded)
            .map(|s| s.shard)
            .collect();
        let us = |q: f64| {
            latency
                .quantile(q)
                .map(|d| d.as_secs_f64() * 1e6)
                .unwrap_or(0.0)
        };
        let (latency_p50_us, latency_p99_us) = (us(0.50), us(0.99));
        Self {
            stats_version: STATS_VERSION,
            shards,
            total_processed,
            total_dropped,
            total_rejected,
            total_shed,
            total_crash_lost,
            total_restarts,
            degraded_shards,
            latency,
            latency_p50_us,
            latency_p99_us,
            obs: None,
        }
    }

    /// Attaches a merged observability report (builder style).
    #[must_use]
    pub fn with_obs(mut self, obs: ObsReport) -> Self {
        self.obs = Some(obs);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        // Overflow clamps to the last bucket.
        assert_eq!(
            LatencyHistogram::bucket_index(u128::MAX),
            LATENCY_BUCKET_COUNT - 1
        );
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(Duration::from_nanos(100)); // bucket 6: [64, 128)
        }
        h.record(Duration::from_micros(100)); // bucket 16: [65536, 131072)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), Some(Duration::from_nanos(128)));
        assert_eq!(h.quantile(0.99), Some(Duration::from_nanos(128)));
        // The single slow observation is exactly the max.
        assert_eq!(h.quantile(1.0), Some(Duration::from_nanos(131_072)));
        assert_eq!(LatencyHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(10));
        b.record(Duration::from_micros(5));
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    fn shard_stats(shard: usize, processed: u64, dropped: u64) -> ShardStats {
        ShardStats {
            shard,
            processed,
            dropped,
            queue_high_water: 4,
            rejected: 0,
            shed: 0,
            crash_lost: 0,
            restarts: 0,
            degraded: false,
        }
    }

    #[test]
    fn pipeline_stats_aggregates_shards() {
        let shards = vec![shard_stats(0, 10, 1), shard_stats(1, 20, 0)];
        let mut lat = LatencyHistogram::new();
        for _ in 0..30 {
            lat.record(Duration::from_micros(3));
        }
        let stats = PipelineStats::from_shards(shards, lat);
        assert_eq!(stats.stats_version, STATS_VERSION);
        assert_eq!(stats.total_processed, 30);
        assert_eq!(stats.total_dropped, 1);
        assert!(stats.latency_p50_us > 0.0);
        assert!(stats.latency_p99_us >= stats.latency_p50_us);
    }

    #[test]
    fn fault_counters_aggregate_and_name_degraded_shards() {
        let mut healthy = shard_stats(0, 50, 0);
        healthy.rejected = 2;
        let mut flaky = shard_stats(1, 30, 0);
        flaky.shed = 5;
        flaky.crash_lost = 3;
        flaky.restarts = 2;
        flaky.degraded = true;
        let stats = PipelineStats::from_shards(vec![healthy, flaky], LatencyHistogram::new());
        assert_eq!(stats.total_rejected, 2);
        assert_eq!(stats.total_shed, 5);
        assert_eq!(stats.total_crash_lost, 3);
        assert_eq!(stats.total_restarts, 2);
        assert_eq!(stats.degraded_shards, vec![1]);
    }

    #[test]
    fn stats_serialize_roundtrip() {
        let mut shard = shard_stats(0, 5, 0);
        shard.shed = 1;
        shard.restarts = 1;
        let mut lat = LatencyHistogram::new();
        lat.record(Duration::from_micros(1));
        let stats = PipelineStats::from_shards(vec![shard], lat);
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn legacy_artifacts_without_fault_fields_still_parse() {
        // A verbatim pre-fault-tolerance artifact shape: no stats_version,
        // no rejected/shed/crash_lost/restarts/degraded anywhere. Old
        // `results/` JSON must stay readable by new builds.
        let legacy = r#"{
            "shards": [
                {"shard": 0, "processed": 7, "dropped": 1, "queue_high_water": 3}
            ],
            "total_processed": 7,
            "total_dropped": 1,
            "latency": {"counts": [0, 2, 5], "total": 7},
            "latency_p50_us": 1.5,
            "latency_p99_us": 2.0,
            "obs": null
        }"#;
        let stats: PipelineStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(stats.stats_version, 0, "legacy artifacts read as v0");
        assert_eq!(stats.total_processed, 7);
        assert_eq!(stats.total_rejected, 0);
        assert_eq!(stats.total_shed, 0);
        assert_eq!(stats.total_crash_lost, 0);
        assert_eq!(stats.total_restarts, 0);
        assert!(stats.degraded_shards.is_empty());
        let shard = &stats.shards[0];
        assert_eq!(shard.processed, 7);
        assert_eq!(shard.rejected, 0);
        assert!(!shard.degraded);
    }

    #[test]
    fn obs_report_rides_along_in_stats_json() {
        use sketchad_obs::{MetricsRecorder, Recorder, Stage};

        let rec = MetricsRecorder::new();
        rec.record_span(Stage::Score, 1_000);
        let stats = PipelineStats::from_shards(Vec::new(), LatencyHistogram::new())
            .with_obs(rec.snapshot());
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.obs.unwrap().span("score").unwrap().count, 1);
    }
}
