//! The worker side of a shard: a supervised thread owning one detector,
//! draining one bounded channel, with an optional companion refresher
//! thread that recomputes the model off the ingest path.
//!
//! Supervision contract: a panic inside the detector (`process` /
//! `process_batch`) is caught *inside the worker thread*, which rebuilds a
//! fresh detector from the shard's factory, re-adopts the last published
//! snapshot ([`StreamingDetector::adopt_model`]) so scoring resumes from the
//! model readers were already being served, and keeps draining the same
//! channel — scores accumulated before the panic survive. Each shard gets
//! `max_restarts` such recoveries; beyond that it **degrades**: the stale
//! snapshot keeps serving reads, while queued and future updates are shed
//! with exact counts instead of failing the whole pipeline.
//!
//! Asynchronous refresh ([`WorkerConfig::refresh_every`] > 0): the worker
//! switches its detector to external refresh and, at every
//! `refresh_every`-processed-points boundary, (1) adopts the model rebuild
//! it kicked at the *previous* boundary — blocking until it is ready, so
//! adoption points are a pure function of the point stream — and (2) hands
//! the refresher thread a new [`RefreshTask`] capturing the current sketch.
//! Micro-batches are clamped so they never straddle a boundary. The
//! refresher (and any in-flight task) is discarded and respawned when a
//! panic replaces the detector, and joined at drain end.

use crate::ring::ShardChannel;
use crate::snapshot::SnapshotCell;
use crate::stats::LatencyHistogram;
use sketchad_core::{RefreshTask, StreamingDetector, SubspaceModel};
use sketchad_durable::StateStore;
use sketchad_obs::{Counter, Event, Gauge, Hist, RecorderHandle, Stage};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// One unit of work: a point plus its global submission sequence number.
#[derive(Debug)]
pub(crate) struct Job {
    pub seq: u64,
    pub point: Vec<f64>,
    pub enqueued: Instant,
}

/// State shared between the submitting side and a shard's worker thread.
/// All counters are monotone and read with relaxed ordering — they are
/// metrics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    /// Approximate current queue depth (enqueued − processed).
    pub depth: AtomicUsize,
    /// Highest depth ever observed at enqueue time.
    pub high_water: AtomicUsize,
    /// Points rejected at a full queue under `DropNewest`.
    pub dropped: AtomicU64,
    /// Points the worker has scored.
    pub processed: AtomicU64,
    /// Rows refused by input validation and quarantined.
    pub rejected: AtomicU64,
    /// Updates shed: `ShedOldest` evictions, read-only refusals, and
    /// everything a degraded shard drains without scoring.
    pub shed: AtomicU64,
    /// Points consumed from the queue but unscored when a panic struck.
    pub crash_lost: AtomicU64,
    /// Worker restarts performed after detector panics.
    pub restarts: AtomicU64,
    /// Set once the restart budget is exhausted: updates shed, reads keep
    /// serving the stale snapshot.
    pub degraded: AtomicBool,
    /// WAL rows replayed into the detector during warm restart (set once at
    /// engine startup, before the worker spawns).
    pub replayed: AtomicU64,
    /// Durable snapshot generation the detector was restored from (0 for
    /// cold starts).
    pub recovered_generation: AtomicU64,
    /// Latest published model snapshot.
    pub snapshot: Arc<SnapshotCell>,
}

impl ShardShared {
    /// Reserves a queue slot in the depth accounting. Called **before** the
    /// actual enqueue — the worker may drain the job (and decrement) at any
    /// moment after the send, so incrementing afterwards could underflow.
    pub(crate) fn reserve_slot(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Batched form of [`reserve_slot`](Self::reserve_slot): one depth bump
    /// and one high-water update for a whole staged group. The depth count
    /// stays exact; only the high-water mark coarsens to group granularity
    /// (metrics-only — the per-row path would have observed intermediate
    /// depths the worker may already have drained past anyway).
    pub(crate) fn reserve_slots(&self, n: usize) {
        let depth = self.depth.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back a reservation whose enqueue did not happen (full queue or
    /// dead worker) or whose job left the queue unprocessed (eviction).
    pub(crate) fn release_slot(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Rebuilds a shard's detector after a panic (same factory, same shard
/// index, same recorder handle as the original build).
pub(crate) type DetectorRebuild = Box<dyn FnMut() -> Box<dyn StreamingDetector + Send> + Send>;

/// Per-shard worker parameters (everything `Copy`-ish the loops need).
pub(crate) struct WorkerConfig {
    pub shard: usize,
    pub snapshot_every: u64,
    pub max_batch: usize,
    pub max_restarts: u32,
    /// Durable checkpoint period in processed points (0 = only at clean
    /// drain). Only meaningful when a [`StateStore`] is attached.
    pub checkpoint_every: u64,
    /// Off-thread refresh period in processed points (0 = inline refresh
    /// under the detector's own policy).
    pub refresh_every: u64,
}

/// What a worker thread returns when its queue closes.
pub(crate) struct ShardOutput {
    pub scores: Vec<(u64, f64)>,
    pub latency: LatencyHistogram,
}

/// Worker results that must survive a detector panic: they live in the
/// supervisor frame, outside every `catch_unwind`.
struct WorkerState {
    scores: Vec<(u64, f64)>,
    latency: LatencyHistogram,
    /// Jobs popped from the queue but not yet scored; folded into
    /// `crash_lost` when a panic lands between pop and score.
    in_flight: u64,
}

/// The worker's handle on its companion refresher thread: a task channel
/// out, a model channel back, and the bookkeeping that pins adoption to
/// processed-count boundaries.
struct Refresher {
    /// `Option` so `Drop` can hang up before joining.
    task_tx: Option<mpsc::Sender<RefreshTask>>,
    result_rx: mpsc::Receiver<Option<SubspaceModel>>,
    join: Option<JoinHandle<()>>,
    /// A task is in flight; the *next* boundary blocks on its result.
    outstanding: bool,
    /// Shard `processed` count when the in-flight task was kicked; the
    /// adoption-time difference is the `refresh_lag` gauge.
    kicked_at: u64,
}

impl Refresher {
    /// Switches `detector` to external refresh and spawns the refresher
    /// thread. `None` (detector left in inline mode) when async refresh is
    /// off, the detector kind has no deferred-refresh path, or the spawn
    /// fails.
    fn start(cfg: &WorkerConfig, detector: &mut (dyn StreamingDetector + Send)) -> Option<Self> {
        if cfg.refresh_every == 0 || !detector.set_external_refresh(true) {
            return None;
        }
        let (task_tx, task_rx) = mpsc::channel::<RefreshTask>();
        let (result_tx, result_rx) = mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name(format!("sketchad-refresh-{}", cfg.shard))
            .spawn(move || {
                while let Ok(task) = task_rx.recv() {
                    if result_tx.send(task()).is_err() {
                        break; // the worker moved on (restart or shutdown)
                    }
                }
            });
        match spawned {
            Ok(join) => Some(Self {
                task_tx: Some(task_tx),
                result_rx,
                join: Some(join),
                outstanding: false,
                kicked_at: 0,
            }),
            Err(_) => {
                // No refresher thread — fall back to inline refresh rather
                // than never refreshing again.
                detector.set_external_refresh(false);
                None
            }
        }
    }

    /// Runs exactly when `processed` crosses a `refresh_every` boundary:
    /// adopts the rebuild kicked at the previous boundary (blocking until
    /// it is ready — adoption points must depend only on the point stream,
    /// never on thread timing), then kicks a new rebuild from the current
    /// sketch. Pre-warmup boundaries kick nothing, so the detector's own
    /// warmup-end build stays the first model, exactly as in inline mode.
    fn at_boundary(
        &mut self,
        detector: &mut (dyn StreamingDetector + Send),
        shared: &ShardShared,
        recorder: &RecorderHandle,
    ) {
        let processed = shared.processed.load(Ordering::Relaxed);
        if self.outstanding {
            self.outstanding = false;
            if let Ok(result) = self.result_rx.recv() {
                if let Some(model) = result {
                    detector.adopt_model(&model);
                }
                if recorder.enabled() {
                    recorder.gauge(Gauge::RefreshLag, (processed - self.kicked_at) as f64);
                }
            }
        }
        if detector.is_warmed_up() {
            if let Some(task) = detector.refresh_task() {
                if self
                    .task_tx
                    .as_ref()
                    .is_some_and(|tx| tx.send(task).is_ok())
                {
                    self.outstanding = true;
                    self.kicked_at = processed;
                }
            }
        }
    }
}

impl Drop for Refresher {
    fn drop(&mut self) {
        // Hang up first so the thread's recv loop ends, then join. At most
        // one task can be in flight, so the join is bounded by one rebuild.
        self.task_tx = None;
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Supervised worker loop: drain, and on a detector panic restart from the
/// last published snapshot (up to `max_restarts` times) or degrade.
///
/// The detector is owned exclusively by this thread — `process` needs
/// `&mut`, and single ownership is what makes per-shard score sequences
/// deterministic. Concurrent readers are served through the snapshot cell
/// instead.
pub(crate) fn run_supervised(
    cfg: WorkerConfig,
    channel: Arc<ShardChannel>,
    mut detector: Box<dyn StreamingDetector + Send>,
    mut rebuild: DetectorRebuild,
    shared: Arc<ShardShared>,
    recorder: RecorderHandle,
    mut store: Option<StateStore>,
) -> ShardOutput {
    let mut state = WorkerState {
        scores: Vec::new(),
        latency: LatencyHistogram::new(),
        in_flight: 0,
    };
    let mut refresher = Refresher::start(&cfg, detector.as_mut());
    loop {
        let drained = catch_unwind(AssertUnwindSafe(|| {
            drain(
                &cfg,
                &channel,
                detector.as_mut(),
                &shared,
                &recorder,
                &mut state,
                &mut store,
                &mut refresher,
            );
        }));
        match drained {
            Ok(()) => {
                // Queue closed and fully drained: publish whatever the
                // detector ended up with so post-drain readers see the
                // freshest model, and cut a final durable checkpoint so the
                // next open restores without replay.
                publish_snapshot(cfg.shard, detector.as_ref(), &shared, &recorder);
                if let Some(s) = store.as_mut() {
                    checkpoint(&cfg, s, detector.as_ref(), &recorder);
                    let _ = s.flush();
                }
                break;
            }
            Err(_payload) => {
                // Whatever was popped but unscored died with the panic; the
                // detector itself is assumed corrupted and is replaced.
                shared
                    .crash_lost
                    .fetch_add(state.in_flight, Ordering::Relaxed);
                state.in_flight = 0;
                let restarts = shared.restarts.fetch_add(1, Ordering::Relaxed) + 1;
                if restarts > u64::from(cfg.max_restarts) {
                    degrade(&cfg, &channel, &shared, &recorder, restarts);
                    break;
                }
                // The rebuild itself may panic (a broken factory); that
                // burns the remaining budget at once — degrade.
                let rebuilt = catch_unwind(AssertUnwindSafe(|| {
                    let mut fresh = rebuild();
                    if let Some(model) = shared.snapshot.load() {
                        // Resume scoring from the model readers already see;
                        // detectors without an adoption path warm up anew.
                        fresh.adopt_model(&model);
                    }
                    fresh
                }));
                match rebuilt {
                    Ok(fresh) => {
                        detector = fresh;
                        // The old refresher's in-flight task (if any) was
                        // computed from the corrupted detector's sketch;
                        // discard it with the thread and start afresh.
                        refresher = Refresher::start(&cfg, detector.as_mut());
                        if recorder.enabled() {
                            recorder.incr(Counter::WorkerRestarts, 1);
                            recorder.event(Event::WorkerRestarted {
                                shard: cfg.shard,
                                restarts,
                            });
                        }
                    }
                    Err(_) => {
                        degrade(&cfg, &channel, &shared, &recorder, restarts);
                        break;
                    }
                }
            }
        }
    }
    ShardOutput {
        scores: state.scores,
        latency: state.latency,
    }
}

/// Drains jobs until the channel closes. With `max_batch > 1` the worker
/// micro-batches: after blocking for one job it opportunistically drains up
/// to `max_batch − 1` already-queued jobs (one batch pop on the ring) and
/// scores the group through [`StreamingDetector::process_batch`], whose
/// blocked `V_kᵀY` kernel yields scores bitwise identical to per-point
/// processing. Under async refresh a micro-batch is additionally clamped so
/// it never crosses a `refresh_every` boundary — adoption points stay a
/// pure function of the point stream. Instrumented workers always run per
/// point so recorded span and gauge counts match the per-point contract
/// exactly.
#[allow(clippy::too_many_arguments)]
fn drain(
    cfg: &WorkerConfig,
    channel: &ShardChannel,
    detector: &mut (dyn StreamingDetector + Send),
    shared: &ShardShared,
    recorder: &RecorderHandle,
    state: &mut WorkerState,
    store: &mut Option<StateStore>,
    refresher: &mut Option<Refresher>,
) {
    let observing = recorder.enabled();
    if observing || cfg.max_batch <= 1 {
        while let Some(job) = channel.pop_block() {
            let depth_after = shared.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            // Write-ahead: the row is on disk before the detector sees it,
            // so a crash between log and score replays it on recovery.
            log_row(store, &job.point);
            state.in_flight = 1;
            let score = detector.process(&job.point);
            state.in_flight = 0;
            let processed = shared.processed.fetch_add(1, Ordering::Relaxed) + 1;
            let waited = job.enqueued.elapsed();
            state.latency.record(waited);
            state.scores.push((job.seq, score));
            if observing {
                recorder.gauge(Gauge::QueueDepth, depth_after as f64);
                if let Some(depth) = channel.ring_depth() {
                    recorder.gauge(Gauge::RingDepth, depth as f64);
                }
                recorder.record_hist(Hist::SubmitLatency, waited.as_nanos() as u64);
            }
            if let Some(r) = refresher.as_mut() {
                if processed.is_multiple_of(cfg.refresh_every) {
                    r.at_boundary(detector, shared, recorder);
                }
            }
            if cfg.snapshot_every > 0 && processed.is_multiple_of(cfg.snapshot_every) {
                publish_snapshot(cfg.shard, detector, shared, recorder);
            }
            if let Some(s) = store.as_mut() {
                if cfg.checkpoint_every > 0 && processed.is_multiple_of(cfg.checkpoint_every) {
                    checkpoint(cfg, s, detector, recorder);
                }
            }
        }
    } else {
        // Reused across batches: the only steady-state allocations left are
        // the point vectors themselves, owned by the submitter.
        let mut batch_jobs: Vec<Job> = Vec::with_capacity(cfg.max_batch);
        let mut batch_points: Vec<Vec<f64>> = Vec::with_capacity(cfg.max_batch);
        let mut batch_meta: Vec<(u64, Instant)> = Vec::with_capacity(cfg.max_batch);
        let mut batch_scores: Vec<f64> = Vec::with_capacity(cfg.max_batch);
        while let Some(job) = channel.pop_block() {
            let before = shared.processed.load(Ordering::Relaxed);
            // Clamp to the next refresh boundary so no batch straddles one.
            let budget = match refresher {
                Some(_) => {
                    let to_boundary = cfg.refresh_every - (before % cfg.refresh_every);
                    (cfg.max_batch as u64).min(to_boundary) as usize
                }
                None => cfg.max_batch,
            };
            batch_points.clear();
            batch_meta.clear();
            batch_meta.push((job.seq, job.enqueued));
            batch_points.push(job.point);
            if batch_points.len() < budget {
                batch_jobs.clear();
                channel.pop_batch(&mut batch_jobs, budget - batch_points.len());
                for job in batch_jobs.drain(..) {
                    batch_meta.push((job.seq, job.enqueued));
                    batch_points.push(job.point);
                }
            }
            let n = batch_points.len() as u64;
            shared.depth.fetch_sub(n as usize, Ordering::Relaxed);
            // Write-ahead for the whole micro-batch before any scoring: a
            // crash mid-batch replays every logged row on recovery.
            for point in &batch_points {
                log_row(store, point);
            }
            state.in_flight = n;
            detector.process_batch(&batch_points, &mut batch_scores);
            state.in_flight = 0;
            let before = shared.processed.fetch_add(n, Ordering::Relaxed);
            // One clock read per micro-batch: queue latency is measured at
            // drain granularity, like the submit side stamps one `enqueued`
            // per staged batch (metrics-only accounting, scores unaffected).
            let drained = Instant::now();
            for (&(seq, enqueued), &score) in batch_meta.iter().zip(batch_scores.iter()) {
                state.latency.record(drained.duration_since(enqueued));
                state.scores.push((seq, score));
            }
            if let Some(r) = refresher.as_mut() {
                // The clamp above means crossing ⇔ landing exactly on it.
                if (before + n).is_multiple_of(cfg.refresh_every) {
                    r.at_boundary(detector, shared, recorder);
                }
            }
            // Publish when the batch crossed a `snapshot_every` boundary —
            // same cadence (one publish per period) as the per-point loop.
            if cfg.snapshot_every > 0
                && before / cfg.snapshot_every != (before + n) / cfg.snapshot_every
            {
                publish_snapshot(cfg.shard, detector, shared, recorder);
            }
            if let Some(s) = store.as_mut() {
                if cfg.checkpoint_every > 0
                    && before / cfg.checkpoint_every != (before + n) / cfg.checkpoint_every
                {
                    checkpoint(cfg, s, detector, recorder);
                }
            }
        }
    }
}

/// Terminal degraded mode: flag the shard, then drain every remaining and
/// future job as shed (exact counts, no scoring) until shutdown. The last
/// published snapshot stays up for readers.
fn degrade(
    cfg: &WorkerConfig,
    channel: &ShardChannel,
    shared: &ShardShared,
    recorder: &RecorderHandle,
    restarts: u64,
) {
    shared.degraded.store(true, Ordering::Relaxed);
    if recorder.enabled() {
        recorder.event(Event::ShardDegraded {
            shard: cfg.shard,
            restarts,
        });
    }
    while let Some(job) = channel.pop_block() {
        shared.depth.fetch_sub(1, Ordering::Relaxed);
        shared.shed.fetch_add(1, Ordering::Relaxed);
        if recorder.enabled() {
            recorder.incr(Counter::PointsShed, 1);
            recorder.event(Event::QueueShed {
                shard: cfg.shard,
                seq: job.seq,
            });
        }
    }
}

/// Appends one row to the shard's WAL. A durable I/O failure disables
/// persistence for the rest of the run (the store is dropped) rather than
/// taking the shard down: serving availability outranks durability, and the
/// on-disk state stays valid — it is merely frozen at the last good write.
fn log_row(store: &mut Option<StateStore>, point: &[f64]) {
    if let Some(s) = store.as_mut() {
        if s.append_row(point).is_err() {
            *store = None;
        }
    }
}

/// Serializes the detector and cuts a durable checkpoint. Detectors without
/// a persistence path (`save_state` → `false`) simply skip checkpointing —
/// their WAL is never rotated, so recovery replays the entire log instead.
fn checkpoint(
    cfg: &WorkerConfig,
    store: &mut StateStore,
    detector: &dyn StreamingDetector,
    recorder: &RecorderHandle,
) {
    let mut payload = Vec::new();
    if !detector.save_state(&mut payload) {
        return;
    }
    if let Ok(generation) = store.checkpoint(&payload) {
        if recorder.enabled() {
            recorder.incr(Counter::CheckpointsWritten, 1);
            let _ = (cfg.shard, generation);
        }
    }
}

fn publish_snapshot(
    shard: usize,
    detector: &dyn StreamingDetector,
    shared: &ShardShared,
    recorder: &RecorderHandle,
) {
    let cell = &shared.snapshot;
    let Some(model) = detector.current_model() else {
        return;
    };
    if recorder.enabled() {
        let started = Instant::now();
        cell.publish(Arc::new(model.clone()));
        recorder.record_span(Stage::SnapshotPublish, started.elapsed().as_nanos() as u64);
        recorder.incr(Counter::SnapshotsPublished, 1);
        recorder.event(Event::SnapshotPublished {
            shard,
            generation: cell.generation(),
            processed: shared.processed.load(Ordering::Relaxed),
        });
    } else {
        cell.publish(Arc::new(model.clone()));
    }
}
