//! The worker side of a shard: a thread owning one detector, draining one
//! bounded queue.

use crate::snapshot::SnapshotCell;
use crate::stats::LatencyHistogram;
use sketchad_core::StreamingDetector;
use sketchad_obs::{Counter, Event, Gauge, RecorderHandle, Stage};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

/// One unit of work: a point plus its global submission sequence number.
pub(crate) struct Job {
    pub seq: u64,
    pub point: Vec<f64>,
    pub enqueued: Instant,
}

/// State shared between the submitting side and a shard's worker thread.
/// All counters are monotone and read with relaxed ordering — they are
/// metrics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    /// Approximate current queue depth (enqueued − processed).
    pub depth: AtomicUsize,
    /// Highest depth ever observed at enqueue time.
    pub high_water: AtomicUsize,
    /// Points rejected at a full queue under `DropNewest`.
    pub dropped: AtomicU64,
    /// Points the worker has scored.
    pub processed: AtomicU64,
    /// Latest published model snapshot.
    pub snapshot: Arc<SnapshotCell>,
}

impl ShardShared {
    /// Reserves a queue slot in the depth accounting. Called **before** the
    /// actual enqueue — the worker may drain the job (and decrement) at any
    /// moment after the send, so incrementing afterwards could underflow.
    pub(crate) fn reserve_slot(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back a reservation whose enqueue did not happen (full queue or
    /// dead worker).
    pub(crate) fn release_slot(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What a worker thread returns when its queue closes.
pub(crate) struct ShardOutput {
    pub scores: Vec<(u64, f64)>,
    pub latency: LatencyHistogram,
}

/// Worker loop: drain jobs until every sender is gone, then publish a final
/// snapshot and hand back the scores.
///
/// The detector is owned exclusively by this thread — `process` needs
/// `&mut`, and single ownership is what makes per-shard score sequences
/// deterministic. Concurrent readers are served through the snapshot cell
/// instead.
///
/// With `max_batch > 1` the worker micro-batches: after blocking for one
/// job it opportunistically drains up to `max_batch − 1` already-queued
/// jobs and scores the group through
/// [`StreamingDetector::process_batch`], whose blocked `V_kᵀY` kernel
/// yields scores bitwise identical to per-point processing. Instrumented
/// workers always run per point so recorded span and gauge counts match
/// the per-point contract exactly.
pub(crate) fn run_worker(
    shard: usize,
    rx: Receiver<Job>,
    mut detector: Box<dyn StreamingDetector + Send>,
    shared: Arc<ShardShared>,
    snapshot_every: u64,
    max_batch: usize,
    recorder: RecorderHandle,
) -> ShardOutput {
    let mut scores = Vec::new();
    let mut latency = LatencyHistogram::new();
    let observing = recorder.enabled();

    if observing || max_batch <= 1 {
        while let Ok(job) = rx.recv() {
            let score = detector.process(&job.point);
            let depth_after = shared.depth.fetch_sub(1, Ordering::Relaxed) - 1;
            let processed = shared.processed.fetch_add(1, Ordering::Relaxed) + 1;
            latency.record(job.enqueued.elapsed());
            scores.push((job.seq, score));
            if observing {
                recorder.gauge(Gauge::QueueDepth, depth_after as f64);
            }
            if snapshot_every > 0 && processed.is_multiple_of(snapshot_every) {
                publish_snapshot(shard, detector.as_ref(), &shared, &recorder);
            }
        }
    } else {
        // Reused across batches: the only steady-state allocations left are
        // the point vectors themselves, owned by the submitter.
        let mut batch_points: Vec<Vec<f64>> = Vec::with_capacity(max_batch);
        let mut batch_meta: Vec<(u64, Instant)> = Vec::with_capacity(max_batch);
        let mut batch_scores: Vec<f64> = Vec::with_capacity(max_batch);
        while let Ok(job) = rx.recv() {
            batch_points.clear();
            batch_meta.clear();
            batch_meta.push((job.seq, job.enqueued));
            batch_points.push(job.point);
            while batch_points.len() < max_batch {
                match rx.try_recv() {
                    Ok(job) => {
                        batch_meta.push((job.seq, job.enqueued));
                        batch_points.push(job.point);
                    }
                    Err(_) => break,
                }
            }
            let n = batch_points.len() as u64;
            detector.process_batch(&batch_points, &mut batch_scores);
            shared.depth.fetch_sub(n as usize, Ordering::Relaxed);
            let before = shared.processed.fetch_add(n, Ordering::Relaxed);
            for (&(seq, enqueued), &score) in batch_meta.iter().zip(batch_scores.iter()) {
                latency.record(enqueued.elapsed());
                scores.push((seq, score));
            }
            // Publish when the batch crossed a `snapshot_every` boundary —
            // same cadence (one publish per period) as the per-point loop.
            if snapshot_every > 0 && before / snapshot_every != (before + n) / snapshot_every {
                publish_snapshot(shard, detector.as_ref(), &shared, &recorder);
            }
        }
    }

    // Queue closed: graceful shutdown. Publish whatever the detector ended
    // up with so post-drain readers see the freshest model.
    publish_snapshot(shard, detector.as_ref(), &shared, &recorder);
    ShardOutput { scores, latency }
}

fn publish_snapshot(
    shard: usize,
    detector: &dyn StreamingDetector,
    shared: &ShardShared,
    recorder: &RecorderHandle,
) {
    let cell = &shared.snapshot;
    let Some(model) = detector.current_model() else {
        return;
    };
    if recorder.enabled() {
        let started = Instant::now();
        cell.publish(Arc::new(model.clone()));
        recorder.record_span(Stage::SnapshotPublish, started.elapsed().as_nanos() as u64);
        recorder.incr(Counter::SnapshotsPublished, 1);
        recorder.event(Event::SnapshotPublished {
            shard,
            generation: cell.generation(),
            processed: shared.processed.load(Ordering::Relaxed),
        });
    } else {
        cell.publish(Arc::new(model.clone()));
    }
}
