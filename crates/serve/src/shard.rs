//! The worker side of a shard: a thread owning one detector, draining one
//! bounded queue.

use crate::snapshot::SnapshotCell;
use crate::stats::LatencyHistogram;
use sketchad_core::StreamingDetector;
use sketchad_obs::{Counter, Event, Gauge, RecorderHandle, Stage};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::Instant;

/// One unit of work: a point plus its global submission sequence number.
pub(crate) struct Job {
    pub seq: u64,
    pub point: Vec<f64>,
    pub enqueued: Instant,
}

/// State shared between the submitting side and a shard's worker thread.
/// All counters are monotone and read with relaxed ordering — they are
/// metrics, not synchronization.
#[derive(Debug, Default)]
pub(crate) struct ShardShared {
    /// Approximate current queue depth (enqueued − processed).
    pub depth: AtomicUsize,
    /// Highest depth ever observed at enqueue time.
    pub high_water: AtomicUsize,
    /// Points rejected at a full queue under `DropNewest`.
    pub dropped: AtomicU64,
    /// Points the worker has scored.
    pub processed: AtomicU64,
    /// Latest published model snapshot.
    pub snapshot: Arc<SnapshotCell>,
}

impl ShardShared {
    /// Reserves a queue slot in the depth accounting. Called **before** the
    /// actual enqueue — the worker may drain the job (and decrement) at any
    /// moment after the send, so incrementing afterwards could underflow.
    pub(crate) fn reserve_slot(&self) {
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back a reservation whose enqueue did not happen (full queue or
    /// dead worker).
    pub(crate) fn release_slot(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// What a worker thread returns when its queue closes.
pub(crate) struct ShardOutput {
    pub scores: Vec<(u64, f64)>,
    pub latency: LatencyHistogram,
}

/// Worker loop: drain jobs until every sender is gone, then publish a final
/// snapshot and hand back the scores.
///
/// The detector is owned exclusively by this thread — `process` needs
/// `&mut`, and single ownership is what makes per-shard score sequences
/// deterministic. Concurrent readers are served through the snapshot cell
/// instead.
pub(crate) fn run_worker(
    shard: usize,
    rx: Receiver<Job>,
    mut detector: Box<dyn StreamingDetector + Send>,
    shared: Arc<ShardShared>,
    snapshot_every: u64,
    recorder: RecorderHandle,
) -> ShardOutput {
    let mut scores = Vec::new();
    let mut latency = LatencyHistogram::new();
    let observing = recorder.enabled();

    while let Ok(job) = rx.recv() {
        let score = detector.process(&job.point);
        let depth_after = shared.depth.fetch_sub(1, Ordering::Relaxed) - 1;
        let processed = shared.processed.fetch_add(1, Ordering::Relaxed) + 1;
        latency.record(job.enqueued.elapsed());
        scores.push((job.seq, score));
        if observing {
            recorder.gauge(Gauge::QueueDepth, depth_after as f64);
        }
        if snapshot_every > 0 && processed % snapshot_every == 0 {
            publish_snapshot(shard, detector.as_ref(), &shared, &recorder);
        }
    }

    // Queue closed: graceful shutdown. Publish whatever the detector ended
    // up with so post-drain readers see the freshest model.
    publish_snapshot(shard, detector.as_ref(), &shared, &recorder);
    ShardOutput { scores, latency }
}

fn publish_snapshot(
    shard: usize,
    detector: &dyn StreamingDetector,
    shared: &ShardShared,
    recorder: &RecorderHandle,
) {
    let cell = &shared.snapshot;
    let Some(model) = detector.current_model() else {
        return;
    };
    if recorder.enabled() {
        let started = Instant::now();
        cell.publish(Arc::new(model.clone()));
        recorder.record_span(Stage::SnapshotPublish, started.elapsed().as_nanos() as u64);
        recorder.incr(Counter::SnapshotsPublished, 1);
        recorder.event(Event::SnapshotPublished {
            shard,
            generation: cell.generation(),
            processed: shared.processed.load(Ordering::Relaxed),
        });
    } else {
        cell.publish(Arc::new(model.clone()));
    }
}
