//! Snapshot-swapped read path.
//!
//! Each updating shard periodically publishes an immutable
//! `Arc<SubspaceModel>` into its [`SnapshotCell`]. Reader threads clone the
//! `Arc` out and score against it with no coordination beyond a briefly held
//! read lock — the model itself is never locked, never mutated, and stays
//! alive for as long as any reader holds the `Arc`, even if the shard
//! publishes ten newer generations meanwhile.

use sketchad_core::{ScoreKind, ScoreScratch, SubspaceModel};
use sketchad_linalg::Matrix;
use std::sync::{Arc, RwLock};

/// A slot holding the latest published model for one shard.
///
/// `std` has no atomic `Arc` swap, so the slot is an `RwLock` around the
/// `Arc` — writers hold it only for the pointer swap and readers only for a
/// pointer clone, so contention is limited to those few instructions, not
/// to scoring or model rebuilds.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    slot: RwLock<Option<Arc<SubspaceModel>>>,
    /// Publication count, for staleness monitoring.
    generation: std::sync::atomic::AtomicU64,
}

impl SnapshotCell {
    /// An empty cell (no model published yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a new model generation, replacing the previous one.
    /// In-flight readers keep scoring against the generation they already
    /// cloned.
    ///
    /// The generation counter is bumped *inside* the write critical section:
    /// bumping it after the guard dropped (as an earlier revision did) let a
    /// reader observe the new model paired with the old generation number,
    /// and let two racing publishers interleave swap/bump so the counter no
    /// longer matched publication order. Holding the lock across both makes
    /// `load_with_generation` exact.
    pub fn publish(&self, model: Arc<SubspaceModel>) {
        let mut guard = self.slot.write().unwrap_or_else(|e| e.into_inner());
        *guard = Some(model);
        self.generation
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Clones out the latest published model, if any.
    pub fn load(&self) -> Option<Arc<SubspaceModel>> {
        self.slot.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Clones out the latest model together with the generation that
    /// published it. Unlike calling [`Self::load`] and [`Self::generation`]
    /// separately (which can interleave with a concurrent publish), the
    /// pair is consistent: the returned number is exactly the publication
    /// count at the moment this model was the latest.
    pub fn load_with_generation(&self) -> (Option<Arc<SubspaceModel>>, u64) {
        let guard = self.slot.read().unwrap_or_else(|e| e.into_inner());
        let model = guard.clone();
        let generation = self.generation.load(std::sync::atomic::Ordering::Acquire);
        (model, generation)
    }

    /// How many times a model has been published into this cell.
    pub fn generation(&self) -> u64 {
        self.generation.load(std::sync::atomic::Ordering::Acquire)
    }
}

/// A cheap, cloneable handle for scoring points against one shard's latest
/// snapshot — the concurrent analogue of
/// [`StreamingDetector::score_only`](sketchad_core::StreamingDetector::score_only).
///
/// Safe to use from any number of threads while the shard keeps updating:
/// reads never block writes beyond the pointer swap in [`SnapshotCell`].
#[derive(Debug, Clone)]
pub struct SnapshotScorer {
    cell: Arc<SnapshotCell>,
    score: ScoreKind,
}

impl SnapshotScorer {
    pub(crate) fn new(cell: Arc<SnapshotCell>, score: ScoreKind) -> Self {
        Self { cell, score }
    }

    /// Scores `y` against the latest snapshot; `None` until the shard has
    /// published a model.
    pub fn score(&self, y: &[f64]) -> Option<f64> {
        self.cell.load().map(|m| self.score.evaluate(&m, y))
    }

    /// Scores every row of `ys` against **one** snapshot generation (a
    /// single cell load for the whole batch) through the model's blocked
    /// `V_kᵀY` kernel. Appends to `out` after clearing it; `scratch` is
    /// caller-owned, so steady-state batch scoring allocates nothing.
    ///
    /// Returns `false` (with `out` empty) until the shard has published a
    /// model. Scores are bitwise identical to [`Self::score`] per row.
    pub fn score_batch_into(
        &self,
        ys: &Matrix,
        scratch: &mut ScoreScratch,
        out: &mut Vec<f64>,
    ) -> bool {
        match self.cell.load() {
            Some(m) => {
                m.score_batch_into(ys, self.score, scratch, out);
                true
            }
            None => {
                out.clear();
                false
            }
        }
    }

    /// Row-slice variant of [`Self::score_batch_into`]: stages `rows` into
    /// the scratch's reusable matrix, then scores them against one snapshot
    /// generation.
    pub fn score_rows_into(
        &self,
        rows: &[Vec<f64>],
        scratch: &mut ScoreScratch,
        out: &mut Vec<f64>,
    ) -> bool {
        match self.cell.load() {
            Some(m) => {
                m.score_rows_into(rows, self.score, scratch, out);
                true
            }
            None => {
                out.clear();
                false
            }
        }
    }

    /// The latest snapshot itself.
    pub fn model(&self) -> Option<Arc<SubspaceModel>> {
        self.cell.load()
    }

    /// Generation counter of the underlying cell.
    pub fn generation(&self) -> u64 {
        self.cell.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchad_core::DetectorConfig;
    use sketchad_core::StreamingDetector;

    fn trained_model() -> SubspaceModel {
        let mut det = DetectorConfig::new(2, 8).with_warmup(16).build_fd(6);
        for i in 0..64 {
            let t = i as f64 * 0.37;
            det.process(&[t.sin(), t.cos(), 0.5 * t.sin(), 0.1, 0.0, 0.0]);
        }
        det.current_model().expect("model after warmup").clone()
    }

    #[test]
    fn publish_then_load_round_trips() {
        let cell = SnapshotCell::new();
        assert!(cell.load().is_none());
        assert_eq!(cell.generation(), 0);
        let m = Arc::new(trained_model());
        cell.publish(Arc::clone(&m));
        assert_eq!(cell.generation(), 1);
        let loaded = cell.load().unwrap();
        assert!(Arc::ptr_eq(&loaded, &m));
    }

    #[test]
    fn old_readers_survive_republication() {
        let cell = SnapshotCell::new();
        let first = Arc::new(trained_model());
        cell.publish(Arc::clone(&first));
        let held = cell.load().unwrap();
        cell.publish(Arc::new(trained_model()));
        // The held generation is still fully usable.
        assert!(Arc::ptr_eq(&held, &first));
        assert!(held.projection_distance_sq(&[1.0; 6]).is_finite());
        assert_eq!(cell.generation(), 2);
    }

    #[test]
    fn batch_scorer_matches_per_point_bitwise() {
        let cell = Arc::new(SnapshotCell::new());
        let scorer = SnapshotScorer::new(Arc::clone(&cell), ScoreKind::RelativeProjection);
        let mut scratch = ScoreScratch::new();
        let mut out = vec![1.0; 3]; // stale contents must be cleared
        let rows: Vec<Vec<f64>> = (0..9)
            .map(|i| (0..6).map(|j| ((i * 6 + j) as f64 * 0.21).sin()).collect())
            .collect();
        // No model yet: both batch entry points report absence.
        assert!(!scorer.score_rows_into(&rows, &mut scratch, &mut out));
        assert!(out.is_empty());
        let ys = Matrix::from_rows(&rows).unwrap();
        assert!(!scorer.score_batch_into(&ys, &mut scratch, &mut out));
        assert!(out.is_empty());

        cell.publish(Arc::new(trained_model()));
        assert!(scorer.score_rows_into(&rows, &mut scratch, &mut out));
        assert_eq!(out.len(), rows.len());
        for (row, &got) in rows.iter().zip(out.iter()) {
            let want = scorer.score(row).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let mut out2 = Vec::new();
        assert!(scorer.score_batch_into(&ys, &mut scratch, &mut out2));
        assert_eq!(out, out2);
    }

    /// Regression test for the publish ordering bug: under concurrent
    /// publishers, the generation counter must stay consistent with the
    /// slot contents. Publishers tag each model's `rows_represented` with
    /// its publication number; a consistent load never sees a model whose
    /// tag exceeds the generation it was loaded with.
    #[test]
    fn generation_never_lags_published_model() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let cell = Arc::new(SnapshotCell::new());
        let stop = Arc::new(AtomicBool::new(false));
        let base = trained_model();

        let publishers: Vec<_> = (0..2)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                let base = base.clone();
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        // One model per publication, tagged by load order:
                        // the tag is assigned *inside* publish's critical
                        // section indirectly — we read generation after our
                        // own publish and only require monotone consistency
                        // from the reader side below.
                        cell.publish(Arc::new(base.clone()));
                    }
                })
            })
            .collect();

        let reader = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_gen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (model, generation) = cell.load_with_generation();
                    // A model present implies at least one publication has
                    // completed its counter bump — this is exactly what the
                    // old drop-then-bump ordering violated.
                    if model.is_some() {
                        assert!(generation >= 1, "model visible before its bump");
                    }
                    assert!(generation >= last_gen, "generation went backwards");
                    last_gen = generation;
                }
            })
        };

        std::thread::sleep(std::time::Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        for p in publishers {
            p.join().unwrap();
        }
        reader.join().unwrap();
        assert!(cell.generation() >= 1);
    }

    #[test]
    fn load_with_generation_pairs_are_exact_in_sequence() {
        let cell = SnapshotCell::new();
        let (m, g) = cell.load_with_generation();
        assert!(m.is_none());
        assert_eq!(g, 0);
        cell.publish(Arc::new(trained_model()));
        let (m, g) = cell.load_with_generation();
        assert!(m.is_some());
        assert_eq!(g, 1);
        cell.publish(Arc::new(trained_model()));
        let (_, g) = cell.load_with_generation();
        assert_eq!(g, 2);
    }

    #[test]
    fn scorer_matches_direct_evaluation() {
        let cell = Arc::new(SnapshotCell::new());
        let scorer = SnapshotScorer::new(Arc::clone(&cell), ScoreKind::ProjectionDistance);
        assert!(scorer.score(&[1.0; 6]).is_none());
        let m = Arc::new(trained_model());
        cell.publish(Arc::clone(&m));
        let y = [0.3, -1.2, 0.7, 0.0, 2.0, -0.5];
        let got = scorer.score(&y).unwrap();
        let want = ScoreKind::ProjectionDistance.evaluate(&m, &y);
        assert_eq!(got.to_bits(), want.to_bits());
    }
}
