//! The lock-free fast path between the submit side and a shard worker: a
//! bounded single-producer/single-consumer ring with per-slot sequence
//! counters, plus the [`ShardChannel`] façade that lets the engine fall
//! back to the condvar [`JobQueue`] where sender-side eviction is needed.
//!
//! ## Why a second channel
//!
//! [`JobQueue`] (one mutex, two condvars) is correct for every backpressure
//! policy, but its hot path takes a lock per job on both sides and wakes
//! the peer through a condvar. At millions of points per second those two
//! costs dominate the submit path. The ring replaces them with two atomic
//! operations per slot and no syscalls in the common case; waiting sides
//! spin briefly, then yield, then park on a timeout — no wakeup protocol,
//! so neither side ever takes a lock.
//!
//! The queue stays for two cases: `ShedOldest` backpressure (evicting the
//! *oldest queued* job from the sender side needs shared access to the
//! buffer interior, which the SPSC discipline forbids) and the
//! `legacy_ingest` bench knob that measures the old path for comparison.
//!
//! ## Memory-ordering contract
//!
//! Positions are unbounded `u64`s; slot index is `pos & (capacity − 1)`
//! (capacity is a power of two, ≥ 2). Each slot carries a sequence counter
//! `seq` encoding its lap state:
//!
//! * `seq == pos`       — free: the producer may claim it for position `pos`.
//! * `seq == pos + 1`   — full: the job pushed at `pos` is visible to the
//!   consumer.
//! * consuming stores `seq = pos + capacity`, re-arming the slot for the
//!   producer's next lap.
//!
//! The producer claims with an `Acquire` load of `seq` (so the previous
//! lap's consume — including the payload move-out — happened-before the new
//! write), writes the payload, then publishes with a `Release` store of
//! `pos + 1`. The consumer mirrors it: `Acquire` load sees the payload,
//! move-out, `Release` store of `pos + capacity`. The `head`/`tail` cursors
//! are each written by exactly one side; the consumer's `head` store is
//! `Release` and the producer's batch-reservation `head` load is `Acquire`,
//! so a reservation of `capacity − (tail − head)` slots proves every slot in
//! the claimed range finished its previous lap (a stale `head` only
//! *under*-estimates free space, never over-claims).
//!
//! Lifecycle mirrors [`JobQueue`]: `closed` means drain-and-exit for the
//! consumer and refuse for the producer; `dead` (set by [`DeathWatch`] if
//! the worker thread dies) makes pushes fail instead of spinning forever.

#![allow(unsafe_code)]

use crate::queue::{JobQueue, PushError};
use crate::shard::Job;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Keeps the producer and consumer cursors on separate cache lines so the
/// two sides do not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot {
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<Job>>,
}

/// Bounded SPSC ring; see the module docs for the slot-sequence protocol.
///
/// # Invariants (upheld by the engine, not the type system)
///
/// At most one thread pushes at a time and at most one thread pops at a
/// time (the shard's worker thread; a restarted worker is the *same*
/// thread, so the discipline survives panics). Two engine paths satisfy
/// the producer side:
///
/// * the `&mut self` submit methods on `ServeEngine`, which serialize all
///   producers through one exclusive borrow;
/// * `submit_batch_rows_parallel`'s producer lanes, which partition shards
///   by ownership — lane `p` of `P` is the unique pusher for every shard
///   `s` with `s % P == p`, so each ring still sees exactly one producer
///   thread for the whole scoped region. Lanes are joined (scope exit)
///   before any other path may push again, and the join's happens-before
///   edge hands the producer cursor to the next pusher.
///
/// `close` / `mark_dead` / `len` are safe from any thread.
pub(crate) struct SpscRing {
    slots: Box<[Slot]>,
    mask: u64,
    capacity: u64,
    /// Producer cursor: the next position a push claims.
    tail: CachePadded<AtomicU64>,
    /// Consumer cursor: the next position a pop reads.
    head: CachePadded<AtomicU64>,
    closed: AtomicBool,
    dead: AtomicBool,
}

// SAFETY: the UnsafeCell payload is only touched under the slot-sequence
// protocol above — a slot is written only while `seq == pos` (excluding the
// consumer, which waits for `pos + 1`) and read only while `seq == pos + 1`
// (excluding the producer, which waits for the next lap's `pos`). The
// Acquire/Release pairs on `seq` order the payload accesses.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

/// Spin → yield → park escalation for the waiting side. No unpark pairing:
/// parks are timeout-bounded, so a peer never needs to signal.
struct Backoff(u32);

impl Backoff {
    fn new() -> Self {
        Self(0)
    }

    fn snooze(&mut self) {
        if self.0 < 6 {
            for _ in 0..(1u32 << self.0) {
                std::hint::spin_loop();
            }
        } else if self.0 < 12 {
            std::thread::yield_now();
        } else {
            std::thread::park_timeout(Duration::from_micros(100));
        }
        self.0 = (self.0 + 1).min(16);
    }
}

impl SpscRing {
    /// A ring holding at least `capacity` jobs (rounded up to a power of
    /// two, minimum 2 — with one slot the "free for this lap" and "full
    /// from last lap" sequence values coincide).
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2) as u64;
        let slots = (0..capacity)
            .map(|i| Slot {
                seq: AtomicU64::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            slots,
            mask: capacity - 1,
            capacity,
            tail: CachePadded(AtomicU64::new(0)),
            head: CachePadded(AtomicU64::new(0)),
            closed: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }
    }

    /// Non-blocking push (producer side only).
    pub(crate) fn try_push(&self, job: Job) -> Result<(), PushError> {
        if self.dead.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
            return Err(PushError::Dead(job));
        }
        let pos = self.tail.0.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != pos {
            return Err(PushError::Full(job));
        }
        // SAFETY: `seq == pos` means the slot finished its previous lap
        // (Acquire above pairs with the consumer's Release), and only this
        // producer can claim position `pos`.
        unsafe { (*slot.value.get()).write(job) };
        slot.seq.store(pos + 1, Ordering::Release);
        self.tail.0.store(pos + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Blocking push (`Block` backpressure): spins/parks while full, fails
    /// only on a dead or closed ring.
    pub(crate) fn push_block(&self, mut job: Job) -> Result<(), PushError> {
        let mut backoff = Backoff::new();
        loop {
            match self.try_push(job) {
                Ok(()) => return Ok(()),
                Err(PushError::Full(j)) => {
                    job = j;
                    backoff.snooze();
                }
                Err(dead) => return Err(dead),
            }
        }
    }

    /// One reservation per call: claims `min(jobs.len(), free)` contiguous
    /// slots and moves that many jobs from the front of `jobs` into them.
    /// Returns the number pushed (0 when full); `Err` on a dead or closed
    /// ring with `jobs` untouched.
    pub(crate) fn try_push_batch(&self, jobs: &mut VecDeque<Job>) -> Result<u64, ()> {
        if self.dead.load(Ordering::Acquire) || self.closed.load(Ordering::Acquire) {
            return Err(());
        }
        let tail = self.tail.0.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release store of `head`: every
        // slot the reservation covers observably finished its previous lap.
        // The subtraction saturates because a stale `head` can lag by more
        // than a full lap: `pop_batch` re-arms slots (seq stores) before its
        // single deferred `head` store, and `try_push` admits into re-armed
        // slots on seq alone, so `tail − head` can legitimately exceed
        // `capacity` here. Saturating to zero free slots just makes the
        // caller retry after the cursor store lands.
        let head = self.head.0.load(Ordering::Acquire);
        let free = self.capacity.saturating_sub(tail - head);
        let n = free.min(jobs.len() as u64);
        for i in 0..n {
            let pos = tail + i;
            let slot = &self.slots[(pos & self.mask) as usize];
            debug_assert_eq!(slot.seq.load(Ordering::Acquire), pos);
            let job = jobs.pop_front().expect("n <= jobs.len()");
            // SAFETY: `pos < head + capacity` proves the previous lap was
            // consumed, and the head Acquire above ordered that consume
            // before this write.
            unsafe { (*slot.value.get()).write(job) };
            // Publish in position order — the consumer reads sequentially.
            slot.seq.store(pos + 1, Ordering::Release);
        }
        self.tail.0.store(tail + n, Ordering::Relaxed);
        Ok(n)
    }

    /// Non-blocking pop (consumer side only).
    pub(crate) fn try_pop(&self) -> Option<Job> {
        let pos = self.head.0.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        if slot.seq.load(Ordering::Acquire) != pos + 1 {
            return None;
        }
        // SAFETY: `seq == pos + 1` publishes the payload (Acquire pairs
        // with the producer's Release), and only this consumer reads `pos`.
        let job = unsafe { (*slot.value.get()).assume_init_read() };
        slot.seq.store(pos + self.capacity, Ordering::Release);
        self.head.0.store(pos + 1, Ordering::Release);
        Some(job)
    }

    /// Pops up to `max` already-queued jobs into `out` (appending), one
    /// cursor update for the whole run. Returns the number popped.
    pub(crate) fn pop_batch(&self, out: &mut Vec<Job>, max: usize) -> usize {
        let head = self.head.0.load(Ordering::Relaxed);
        let mut n = 0u64;
        while (n as usize) < max {
            let pos = head + n;
            let slot = &self.slots[(pos & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != pos + 1 {
                break;
            }
            // SAFETY: as in `try_pop`.
            out.push(unsafe { (*slot.value.get()).assume_init_read() });
            slot.seq.store(pos + self.capacity, Ordering::Release);
            n += 1;
        }
        self.head.0.store(head + n, Ordering::Release);
        n as usize
    }

    /// Blocking pop; `None` once the ring is closed *and* drained (the
    /// graceful-shutdown signal, mirroring [`JobQueue::pop_block`]).
    pub(crate) fn pop_block(&self) -> Option<Job> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(job) = self.try_pop() {
                return Some(job);
            }
            if self.closed.load(Ordering::Acquire) {
                // Re-check once: a push may have landed just before close.
                return self.try_pop();
            }
            backoff.snooze();
        }
    }

    /// Approximate occupancy (metrics only — racy by design).
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Relaxed);
        tail.saturating_sub(head) as usize
    }

    /// Shutdown signal: the consumer drains the backlog, then sees `None`.
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Declares the consumer gone for good; blocked and future pushes fail
    /// instead of spinning on a ring nobody will ever drain.
    pub(crate) fn mark_dead(&self) {
        self.dead.store(true, Ordering::Release);
    }
}

impl Drop for SpscRing {
    fn drop(&mut self) {
        // Drop any jobs still in flight. `&mut self` means both sides are
        // gone, so plain (get_mut) reads of the cursors are exact.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for pos in head..tail {
            let slot = &mut self.slots[(pos & self.mask) as usize];
            if *slot.seq.get_mut() == pos + 1 {
                // SAFETY: `seq == pos + 1` means this slot holds an
                // unconsumed job; exclusive access via `&mut self`.
                unsafe { (*slot.value.get()).assume_init_drop() };
            }
        }
    }
}

/// The channel between the engine's submit path and one shard worker:
/// either the lock-free [`SpscRing`] (the default) or the condvar
/// [`JobQueue`] fallback (`ShedOldest` backpressure, `legacy_ingest`).
pub(crate) enum ShardChannel {
    /// Lock-free fast path (`Block` / `DropNewest` backpressure).
    Ring(SpscRing),
    /// Condvar fallback: sender-side eviction and the legacy bench knob.
    Queue(JobQueue),
}

impl ShardChannel {
    pub(crate) fn push_block(&self, job: Job) -> Result<(), PushError> {
        match self {
            Self::Ring(r) => r.push_block(job),
            Self::Queue(q) => q.push_block(job),
        }
    }

    pub(crate) fn try_push(&self, job: Job) -> Result<(), PushError> {
        match self {
            Self::Ring(r) => r.try_push(job),
            Self::Queue(q) => q.try_push(job),
        }
    }

    /// Moves as many jobs as currently fit from the front of `jobs` into
    /// the channel — one slot reservation on the ring, per-job pushes on
    /// the queue — returning the number pushed. `Err` means the channel is
    /// dead or closed (unpushed jobs stay in `jobs` for rollback).
    pub(crate) fn try_push_batch(&self, jobs: &mut VecDeque<Job>) -> Result<u64, ()> {
        match self {
            Self::Ring(r) => r.try_push_batch(jobs),
            Self::Queue(q) => {
                let mut n = 0;
                while let Some(job) = jobs.pop_front() {
                    match q.try_push(job) {
                        Ok(()) => n += 1,
                        Err(PushError::Full(job)) => {
                            jobs.push_front(job);
                            break;
                        }
                        Err(PushError::Dead(job)) => {
                            jobs.push_front(job);
                            return Err(());
                        }
                    }
                }
                Ok(n)
            }
        }
    }

    pub(crate) fn push_shed_oldest(&self, job: Job) -> Result<Option<Job>, PushError> {
        match self {
            // Sender-side eviction needs shared access to the buffer
            // interior; the engine always pairs ShedOldest with the queue.
            Self::Ring(_) => unreachable!("ShedOldest always runs on the queue channel"),
            Self::Queue(q) => q.push_shed_oldest(job),
        }
    }

    pub(crate) fn pop_block(&self) -> Option<Job> {
        match self {
            Self::Ring(r) => r.pop_block(),
            Self::Queue(q) => q.pop_block(),
        }
    }

    /// Batch pop into `out` (appending), up to `max` jobs; the ring does it
    /// under one cursor update, the queue under one lock acquisition.
    pub(crate) fn pop_batch(&self, out: &mut Vec<Job>, max: usize) -> usize {
        match self {
            Self::Ring(r) => r.pop_batch(out, max),
            Self::Queue(q) => q.pop_batch(out, max),
        }
    }

    /// Ring occupancy when this channel is the ring (`None` on the queue
    /// fallback) — feeds the `ring_depth` gauge at drain time.
    pub(crate) fn ring_depth(&self) -> Option<usize> {
        match self {
            Self::Ring(r) => Some(r.len()),
            Self::Queue(_) => None,
        }
    }

    pub(crate) fn close(&self) {
        match self {
            Self::Ring(r) => r.close(),
            Self::Queue(q) => q.close(),
        }
    }

    pub(crate) fn mark_dead(&self) {
        match self {
            Self::Ring(r) => r.mark_dead(),
            Self::Queue(q) => q.mark_dead(),
        }
    }
}

/// Drop guard the worker thread holds: if the supervisor exits by panic
/// (its own bug — detector panics are caught inside it), the guard's `Drop`
/// marks the channel dead on the way out of the thread, upholding the
/// engine's "a dead shard is an error, never a hang" contract.
pub(crate) struct DeathWatch {
    channel: Arc<ShardChannel>,
    armed: bool,
}

impl DeathWatch {
    pub(crate) fn arm(channel: Arc<ShardChannel>) -> Self {
        Self {
            channel,
            armed: true,
        }
    }

    /// Normal worker exit: the channel was closed and drained, not
    /// abandoned.
    pub(crate) fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for DeathWatch {
    fn drop(&mut self) {
        if self.armed {
            self.channel.mark_dead();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn job(seq: u64) -> Job {
        Job {
            seq,
            point: vec![seq as f64],
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two_min_two() {
        assert_eq!(SpscRing::new(1).capacity, 2);
        assert_eq!(SpscRing::new(3).capacity, 4);
        assert_eq!(SpscRing::new(4).capacity, 4);
        assert_eq!(SpscRing::new(1000).capacity, 1024);
    }

    #[test]
    fn fifo_order_and_close_drain() {
        let r = SpscRing::new(4);
        for s in 0..3 {
            r.try_push(job(s)).ok().unwrap();
        }
        r.close();
        assert_eq!(r.pop_block().unwrap().seq, 0);
        assert_eq!(r.pop_block().unwrap().seq, 1);
        assert_eq!(r.pop_block().unwrap().seq, 2);
        assert!(r.pop_block().is_none(), "closed and drained");
        assert!(matches!(r.try_push(job(9)), Err(PushError::Dead(_))));
    }

    #[test]
    fn full_ring_hands_job_back_until_a_slot_frees() {
        let r = SpscRing::new(2);
        r.try_push(job(0)).ok().unwrap();
        r.try_push(job(1)).ok().unwrap();
        match r.try_push(job(2)) {
            Err(PushError::Full(j)) => assert_eq!(j.seq, 2),
            _ => panic!("expected Full"),
        }
        assert_eq!(r.try_pop().unwrap().seq, 0);
        r.try_push(job(2)).ok().unwrap();
        assert_eq!(r.try_pop().unwrap().seq, 1);
        assert_eq!(r.try_pop().unwrap().seq, 2);
        assert!(r.try_pop().is_none());
    }

    #[test]
    fn wraparound_at_capacity_boundaries() {
        // Interleaved bursts lap a tiny ring many times; the slot sequence
        // counters must keep positions straight across every wrap.
        let r = SpscRing::new(4);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for round in 0..100u64 {
            let burst = (round % 4) + 1;
            for _ in 0..burst {
                r.try_push(job(next_push)).ok().unwrap();
                next_push += 1;
            }
            for _ in 0..burst {
                assert_eq!(r.try_pop().unwrap().seq, next_pop);
                next_pop += 1;
            }
        }
        assert_eq!(r.len(), 0);
        assert_eq!(next_pop, next_push);
    }

    #[test]
    fn batch_push_claims_only_free_slots_and_preserves_order() {
        let r = SpscRing::new(4);
        let mut jobs: VecDeque<Job> = (0..6).map(job).collect();
        assert_eq!(r.try_push_batch(&mut jobs).unwrap(), 4);
        assert_eq!(jobs.len(), 2, "overflow stays with the caller");
        assert_eq!(r.try_push_batch(&mut jobs).unwrap(), 0, "ring is full");
        let mut out = Vec::new();
        assert_eq!(r.pop_batch(&mut out, 3), 3);
        assert_eq!(r.try_push_batch(&mut jobs).unwrap(), 2);
        assert_eq!(r.pop_batch(&mut out, 16), 3);
        let seqs: Vec<u64> = out.iter().map(|j| j.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn dead_ring_refuses_pushes_and_unblocks_producer() {
        let r = Arc::new(SpscRing::new(2));
        r.try_push(job(0)).ok().unwrap();
        r.try_push(job(1)).ok().unwrap();
        let r2 = Arc::clone(&r);
        let producer = std::thread::spawn(move || r2.push_block(job(2)).is_err());
        std::thread::sleep(Duration::from_millis(20));
        r.mark_dead();
        assert!(producer.join().unwrap(), "blocked push must fail, not hang");
        assert!(matches!(r.try_push(job(3)), Err(PushError::Dead(_))));
        assert!(matches!(r.try_push_batch(&mut VecDeque::new()), Err(())));
    }

    #[test]
    fn backlog_survives_for_the_same_consumer_thread() {
        // The restart story: a panicked worker restarts *on the same
        // thread*, so jobs pushed before the panic are still in the ring.
        let r = SpscRing::new(8);
        r.try_push(job(7)).ok().unwrap();
        r.try_push(job(8)).ok().unwrap();
        assert_eq!(r.pop_block().unwrap().seq, 7);
        assert_eq!(r.pop_block().unwrap().seq, 8);
    }

    #[test]
    fn dropping_a_nonempty_ring_drops_the_backlog() {
        // Exercised under ASan in CI: leaked or double-dropped jobs fail.
        let r = SpscRing::new(4);
        for s in 0..3 {
            r.try_push(job(s)).ok().unwrap();
        }
        r.try_pop().unwrap();
        drop(r);
    }

    #[test]
    fn two_thread_stress_preserves_order_across_wraps() {
        // Seeded two-thread stress over a tiny ring: bursts of seeded sizes
        // force constant wraparound and full/empty transitions; the
        // consumer asserts it sees exactly 0..N in order.
        const N: u64 = 20_000;
        let r = Arc::new(SpscRing::new(8));
        let producer = {
            let r = Arc::clone(&r);
            std::thread::spawn(move || {
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
                let mut pushed = 0u64;
                let mut staged: VecDeque<Job> = VecDeque::new();
                while pushed < N || !staged.is_empty() {
                    rng = rng
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    let burst = 1 + (rng >> 33) % 7;
                    for _ in 0..burst {
                        if pushed < N {
                            staged.push_back(job(pushed));
                            pushed += 1;
                        }
                    }
                    // Alternate the two push APIs so both see the wraps.
                    if rng & 1 == 0 {
                        r.try_push_batch(&mut staged).unwrap();
                    } else if let Some(j) = staged.pop_front() {
                        r.push_block(j).ok().unwrap();
                    }
                    if (rng >> 20).is_multiple_of(4) {
                        std::thread::yield_now();
                    }
                }
                r.close();
            })
        };
        let mut rng: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let mut seen = 0u64;
        let mut out = Vec::new();
        loop {
            rng = rng
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let max = 1 + ((rng >> 33) as usize) % 6;
            out.clear();
            if r.pop_batch(&mut out, max) == 0 {
                match r.pop_block() {
                    Some(j) => out.push(j),
                    None => break,
                }
            }
            for j in &out {
                assert_eq!(j.seq, seen, "out-of-order or lost job");
                seen += 1;
            }
        }
        producer.join().unwrap();
        assert_eq!(seen, N, "every pushed job must be popped exactly once");
    }

    /// Lane-partitioned multi-producer stress under full-lap wraparound
    /// pressure, with a mid-run worker death. Mirrors the engine's
    /// `submit_batch_rows_parallel` contract: N producer lanes each the
    /// *sole* pusher for their own tiny ring (SPSC per ring is preserved;
    /// multi-producer means many rings, never two pushers on one). One
    /// consumer "dies" with its `DeathWatch` armed partway through — its
    /// lane's producer must fail fast instead of hanging, while every
    /// surviving lane drains its full sequence in order.
    #[test]
    fn lane_partitioned_producers_survive_wraps_and_a_death_watch_kill() {
        const LANES: usize = 4;
        const PER_LANE: u64 = 12_000;
        const KILLED: usize = 2;
        const KILL_AFTER: u64 = 512;

        let channels: Vec<Arc<ShardChannel>> = (0..LANES)
            .map(|_| Arc::new(ShardChannel::Ring(SpscRing::new(8))))
            .collect();

        // Consumers: each ring's unique popper, guarded like a real worker.
        // The killed one returns early without disarming — exactly the
        // supervisor-panic path — so Drop marks its channel dead.
        let consumers: Vec<_> = channels
            .iter()
            .enumerate()
            .map(|(idx, ch)| {
                let ch = Arc::clone(ch);
                std::thread::spawn(move || {
                    let mut watch = DeathWatch::arm(Arc::clone(&ch));
                    let mut seen = 0u64;
                    while let Some(j) = ch.pop_block() {
                        assert_eq!(j.seq, seen, "ring {idx} delivered out of order");
                        seen += 1;
                        if idx == KILLED && seen == KILL_AFTER {
                            return seen; // armed drop → mark_dead
                        }
                    }
                    watch.disarm();
                    seen
                })
            })
            .collect();

        // Producers: lane p owns ring p outright (the S == P case of the
        // engine's `shard % lanes == lane` ownership rule). Seeded bursts
        // against capacity-8 rings force a full lap every few iterations.
        let producers: Vec<_> = channels
            .iter()
            .enumerate()
            .map(|(lane, ch)| {
                let ch = Arc::clone(ch);
                std::thread::spawn(move || {
                    let mut rng: u64 = 0xA076_1D64_78BD_642F ^ ((lane as u64) << 17);
                    let mut staged: VecDeque<Job> = VecDeque::new();
                    let mut next = 0u64;
                    while next < PER_LANE || !staged.is_empty() {
                        rng = rng
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1_442_695_040_888_963_407);
                        let burst = 1 + (rng >> 33) % 7;
                        for _ in 0..burst {
                            if next < PER_LANE {
                                staged.push_back(job(next));
                                next += 1;
                            }
                        }
                        // Alternate both push APIs across the wraps.
                        if rng & 1 == 0 {
                            if ch.try_push_batch(&mut staged).is_err() {
                                return Err(lane); // dead channel: fail fast
                            }
                        } else if let Some(j) = staged.pop_front() {
                            match ch.push_block(j) {
                                Ok(()) => {}
                                Err(PushError::Full(j)) => staged.push_front(j),
                                Err(PushError::Dead(_)) => return Err(lane),
                            }
                        }
                    }
                    Ok(lane)
                })
            })
            .collect();

        let mut dead_lanes = Vec::new();
        for (lane, p) in producers.into_iter().enumerate() {
            match p.join().expect("producer panicked") {
                Ok(done) => assert_eq!(done, lane),
                Err(l) => dead_lanes.push(l),
            }
        }
        // Only the killed lane's producer may observe death; the join
        // completing at all proves nobody hung on the dead ring.
        assert_eq!(dead_lanes, vec![KILLED], "exactly the killed lane fails");

        for ch in &channels {
            ch.close();
        }
        for (idx, c) in consumers.into_iter().enumerate() {
            let seen = c.join().expect("consumer panicked");
            if idx == KILLED {
                assert_eq!(seen, KILL_AFTER);
            } else {
                assert_eq!(seen, PER_LANE, "lane {idx} lost jobs");
            }
        }
        // The dead channel keeps refusing pushes after the fact.
        assert!(matches!(
            channels[KILLED].try_push(job(0)),
            Err(PushError::Dead(_))
        ));
    }
}
