//! Engine configuration: shard count, queue bounds, backpressure,
//! partitioning, and durable-state policy.

use crate::error::ServeError;
use sketchad_durable::FsyncPolicy;
use std::path::PathBuf;

/// What `submit` does when a shard's bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until the worker drains a slot. No point
    /// is ever lost; producers run at the speed of the slowest shard.
    Block,
    /// Drop the newly arriving point and count it in the shard's `dropped`
    /// counter. Producers never block; scores for dropped points are never
    /// emitted.
    DropNewest,
    /// Admit the new point by evicting the *oldest* queued point, counting
    /// the eviction in the shard's `shed` counter. Producers never block,
    /// and under overload the detector keeps seeing the freshest data —
    /// the right trade for anomaly detection, where a stale backlog scores
    /// points against a model that has already moved on.
    ShedOldest,
}

/// How points are assigned to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Cycle through shards in submission order. With one shard this makes
    /// the engine bit-for-bit equivalent to driving the detector directly.
    RoundRobin,
    /// Stable FNV-1a hash of the point's key: the same key always lands on
    /// the same shard, across runs and across machines. Points submitted
    /// without a key fall back to round-robin.
    KeyHash,
}

/// Configuration for [`crate::ServeEngine`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of worker shards (each owns one detector). Must be ≥ 1.
    pub shards: usize,
    /// Bounded capacity of each shard's work queue. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Full-queue behaviour.
    pub backpressure: BackpressurePolicy,
    /// Point-to-shard assignment.
    pub partition: PartitionStrategy,
    /// A shard publishes a fresh model snapshot after every `snapshot_every`
    /// processed points (and once more on shutdown). `0` disables periodic
    /// publication (shutdown still publishes).
    pub snapshot_every: u64,
    /// Upper bound on the shard worker's micro-batch: after blocking for one
    /// job, the worker opportunistically drains up to `max_batch − 1` more
    /// already-queued jobs and scores them through the detector's batched
    /// path (one blocked `V_kᵀY` matmul per batch). Scores are bitwise
    /// identical to per-point processing; `1` disables micro-batching.
    /// Must be ≥ 1.
    pub max_batch: usize,
    /// How many times a shard's panicked worker is rebuilt (resuming from
    /// its last published snapshot) before the shard degrades to
    /// shed-with-count. `0` means a single panic degrades the shard.
    pub max_restarts: u32,
    /// Upper bound on quarantined rows retained for inspection (oldest are
    /// discarded beyond it; rejection *counts* are always exact). `0`
    /// counts rejections without retaining any row.
    pub quarantine_capacity: usize,
    /// Root directory for durable state. When set, each shard write-ahead
    /// logs every row before processing it and periodically checkpoints its
    /// full detector state under `<state_dir>/shard-<idx>/`, and
    /// [`crate::ServeEngine::open_or_recover`] warm-restarts from whatever
    /// is found there. `None` (the default) disables persistence entirely.
    pub state_dir: Option<PathBuf>,
    /// A shard writes a durable checkpoint (snapshot + WAL rotation) after
    /// every `checkpoint_every` processed points, plus once at clean
    /// shutdown. `0` checkpoints only at shutdown. Ignored without
    /// [`state_dir`](Self::state_dir).
    pub checkpoint_every: u64,
    /// How eagerly WAL appends reach stable storage (see
    /// [`FsyncPolicy`]). Ignored without [`state_dir`](Self::state_dir).
    pub fsync: FsyncPolicy,
    /// Asynchronous model refresh period in processed points per shard
    /// (`0`, the default, keeps refresh inline on the ingest thread under
    /// the detector's own policy). When set, each shard switches its
    /// detector to external refresh and runs a dedicated refresher thread:
    /// at every `refresh_every` boundary the worker adopts the previously
    /// kicked rebuild (blocking if it is still running — determinism
    /// outranks latency) and kicks a new one from the current sketch,
    /// warm-started from the live model. Scores stay deterministic because
    /// adoption happens at exact processed-count boundaries, never at
    /// thread-timing-dependent moments; they differ from inline-refresh
    /// scores (the model is adopted one period later than it was computed).
    pub refresh_every: u64,
    /// Forces every shard onto the legacy condvar `JobQueue` channel
    /// instead of the lock-free SPSC ring. A benchmarking knob for
    /// measuring the ring against the old ingest path; `false` by default.
    pub legacy_ingest: bool,
}

impl ServeConfig {
    /// Config with `shards` workers and defaults: queue capacity 1024,
    /// blocking backpressure, round-robin partitioning, snapshots every
    /// 256 points, micro-batches of up to 64 queued points, 2 worker
    /// restarts per shard, 64 retained quarantine rows.
    pub fn new(shards: usize) -> Self {
        Self {
            shards,
            queue_capacity: 1024,
            backpressure: BackpressurePolicy::Block,
            partition: PartitionStrategy::RoundRobin,
            snapshot_every: 256,
            max_batch: 64,
            max_restarts: 2,
            quarantine_capacity: 64,
            state_dir: None,
            checkpoint_every: 4096,
            fsync: FsyncPolicy::default(),
            refresh_every: 0,
            legacy_ingest: false,
        }
    }

    /// Sets the per-shard queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the full-queue behaviour.
    #[must_use]
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Sets the partitioning strategy.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionStrategy) -> Self {
        self.partition = partition;
        self
    }

    /// Sets the snapshot publication period (0 = only on shutdown).
    #[must_use]
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Sets the worker micro-batch ceiling (1 = score strictly per point).
    #[must_use]
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the per-shard worker restart budget (0 = degrade on first
    /// panic).
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Sets how many quarantined rows are retained for inspection.
    #[must_use]
    pub fn with_quarantine_capacity(mut self, capacity: usize) -> Self {
        self.quarantine_capacity = capacity;
        self
    }

    /// Enables durable state under `dir` (WAL + periodic checkpoints per
    /// shard; warm restart via [`crate::ServeEngine::open_or_recover`]).
    #[must_use]
    pub fn with_state_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.state_dir = Some(dir.into());
        self
    }

    /// Sets the durable checkpoint period in processed points per shard
    /// (0 = only at clean shutdown).
    #[must_use]
    pub fn with_checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Sets the WAL fsync policy.
    #[must_use]
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Moves model refresh off the ingest thread: every `every` processed
    /// points the shard adopts the previous off-thread rebuild and kicks a
    /// new one (see [`refresh_every`](Self::refresh_every); `0` keeps
    /// refresh inline).
    #[must_use]
    pub fn with_async_refresh(mut self, every: u64) -> Self {
        self.refresh_every = every;
        self
    }

    /// Forces the legacy condvar queue channel instead of the SPSC ring
    /// (benchmark comparison knob).
    #[must_use]
    pub fn with_legacy_ingest(mut self, legacy: bool) -> Self {
        self.legacy_ingest = legacy;
        self
    }

    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be >= 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be >= 1".into()));
        }
        Ok(())
    }
}

/// Stable 64-bit FNV-1a — the key-hash partitioner. Deliberately not
/// `DefaultHasher` (whose output may change across Rust releases): shard
/// assignment must be reproducible for the determinism tests.
pub(crate) fn stable_hash(key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_rejected() {
        assert!(ServeConfig::new(0).validate().is_err());
        assert!(ServeConfig::new(1)
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(ServeConfig::new(1).with_max_batch(0).validate().is_err());
        assert!(ServeConfig::new(1).validate().is_ok());
        assert!(ServeConfig::new(1).with_max_batch(1).validate().is_ok());
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned values: shard routing must never silently change.
        assert_eq!(stable_hash(0), stable_hash(0));
        assert_ne!(stable_hash(1), stable_hash(2));
        let spread: std::collections::HashSet<u64> =
            (0..64u64).map(|k| stable_hash(k) % 4).collect();
        assert!(spread.len() > 1, "hash must spread keys over shards");
    }
}
