//! The sharded serving engine.

use crate::config::{stable_hash, BackpressurePolicy, PartitionStrategy, ServeConfig};
use crate::error::{panic_message, ServeError};
use crate::shard::{run_worker, Job, ShardShared};
use crate::snapshot::SnapshotScorer;
use crate::stats::{LatencyHistogram, PipelineStats, ShardStats};
use sketchad_core::{ScoreKind, StreamingDetector, SubspaceModel};
use sketchad_obs::{Counter, Event, MetricsRecorder, ObsReport, Recorder, RecorderHandle};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Outcome of submitting one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The point was enqueued and will be scored.
    Accepted,
    /// The point was discarded at a full queue (`DropNewest` policy only).
    Dropped,
}

/// Outcome of a batched submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Points enqueued.
    pub accepted: u64,
    /// Points discarded at full queues.
    pub dropped: u64,
}

/// Everything the pipeline produced, returned by [`ServeEngine::finish`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// `(sequence, score)` for every scored point, sorted by the global
    /// submission sequence. Under `DropNewest`, dropped sequences are
    /// simply absent.
    pub scores: Vec<(u64, f64)>,
    /// Final pipeline statistics.
    pub stats: PipelineStats,
}

impl PipelineReport {
    /// The scores alone, in submission order (sequence numbers discarded).
    pub fn scores_in_order(&self) -> Vec<f64> {
        self.scores.iter().map(|&(_, s)| s).collect()
    }
}

struct ShardHandle {
    tx: Option<SyncSender<Job>>,
    join: Option<JoinHandle<crate::shard::ShardOutput>>,
    shared: Arc<ShardShared>,
    /// This shard's metrics recorder; `None` on uninstrumented engines.
    /// The engine snapshots and merges these at [`ServeEngine::finish`].
    recorder: Option<Arc<MetricsRecorder>>,
    /// Handle over `recorder` for the submit path (no-op when `None`).
    obs: RecorderHandle,
}

/// Sharded concurrent serving engine.
///
/// Partitions submitted points across `N` worker shards, each owning one
/// [`StreamingDetector`] behind a bounded queue. The single-writer rule —
/// only the shard's worker thread ever calls `process` — keeps each shard's
/// score sequence deterministic; concurrent readers score against the
/// shard's published [snapshot](crate::SnapshotScorer) instead of touching
/// the live detector.
///
/// ```
/// use sketchad_core::DetectorConfig;
/// use sketchad_serve::{ServeConfig, ServeEngine};
///
/// let mut engine = ServeEngine::start(ServeConfig::new(2), |_shard| {
///     Box::new(DetectorConfig::new(2, 8).with_warmup(16).build_fd(4))
/// })
/// .unwrap();
/// for i in 0..100u32 {
///     let t = i as f64 * 0.1;
///     engine.submit(vec![t.sin(), t.cos(), 0.0, 0.0]).unwrap();
/// }
/// let report = engine.finish().unwrap();
/// assert_eq!(report.stats.total_processed, 100);
/// ```
pub struct ServeEngine {
    shards: Vec<ShardHandle>,
    dim: usize,
    submitted: u64,
    backpressure: BackpressurePolicy,
    partition: PartitionStrategy,
    /// Errors from shards discovered dead during submission; reported again
    /// (first one) by `finish` so they cannot be silently lost.
    dead: Vec<ServeError>,
}

impl ServeEngine {
    /// Starts `config.shards` worker threads, building each shard's
    /// detector with `factory(shard_index)`.
    ///
    /// Every detector must report the same [`dim`](StreamingDetector::dim);
    /// for deterministic sharded scoring they should also be identically
    /// configured (same seeds per shard are fine — shards see disjoint
    /// substreams).
    pub fn start<F>(config: ServeConfig, mut factory: F) -> Result<Self, ServeError>
    where
        F: FnMut(usize) -> Box<dyn StreamingDetector + Send>,
    {
        Self::start_inner(config, move |idx| (factory(idx), None))
    }

    /// Like [`start`](Self::start), but gives every shard its own
    /// [`MetricsRecorder`], merged into [`PipelineStats::obs`] at
    /// [`finish`](Self::finish).
    ///
    /// The factory receives the shard's [`RecorderHandle`] and should
    /// install it on the detector it builds (e.g.
    /// `SketchDetector::with_recorder`) so detector-level spans land in the
    /// same per-shard report as the engine's queue events. The engine itself
    /// records queue-depth gauges, snapshot publications, and
    /// blocked/dropped submissions on that handle either way.
    ///
    /// ```
    /// use sketchad_core::DetectorConfig;
    /// use sketchad_serve::{ServeConfig, ServeEngine};
    ///
    /// let mut engine = ServeEngine::start_instrumented(
    ///     ServeConfig::new(2).with_snapshot_every(16),
    ///     |_shard, recorder| {
    ///         let det = DetectorConfig::new(2, 8)
    ///             .with_warmup(16)
    ///             .build_fd(4)
    ///             .with_recorder(recorder);
    ///         Box::new(det)
    ///     },
    /// )
    /// .unwrap();
    /// for i in 0..100u32 {
    ///     let t = i as f64 * 0.1;
    ///     engine.submit(vec![t.sin(), t.cos(), 0.0, 0.0]).unwrap();
    /// }
    /// let report = engine.finish().unwrap();
    /// let obs = report.stats.obs.expect("instrumented engine attaches obs");
    /// assert_eq!(obs.span("sketch_update").unwrap().count, 100);
    /// ```
    pub fn start_instrumented<F>(config: ServeConfig, mut factory: F) -> Result<Self, ServeError>
    where
        F: FnMut(usize, RecorderHandle) -> Box<dyn StreamingDetector + Send>,
    {
        Self::start_inner(config, move |idx| {
            let recorder = Arc::new(MetricsRecorder::new());
            let handle = RecorderHandle::from(Arc::clone(&recorder) as Arc<dyn Recorder>);
            (factory(idx, handle), Some(recorder))
        })
    }

    fn start_inner<F>(config: ServeConfig, mut make: F) -> Result<Self, ServeError>
    where
        F: FnMut(
            usize,
        ) -> (
            Box<dyn StreamingDetector + Send>,
            Option<Arc<MetricsRecorder>>,
        ),
    {
        config.validate()?;
        let mut shards = Vec::with_capacity(config.shards);
        let mut dim = None;
        for idx in 0..config.shards {
            let (detector, recorder) = make(idx);
            let d = detector.dim();
            match dim {
                None => dim = Some(d),
                Some(expected) if expected != d => {
                    return Err(ServeError::InvalidConfig(format!(
                        "shard {idx} detector has dim {d}, shard 0 has dim {expected}"
                    )));
                }
                Some(_) => {}
            }
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
            let shared = Arc::new(ShardShared::default());
            let worker_shared = Arc::clone(&shared);
            let snapshot_every = config.snapshot_every;
            let max_batch = config.max_batch;
            let obs = match &recorder {
                Some(r) => RecorderHandle::from(Arc::clone(r) as Arc<dyn Recorder>),
                None => RecorderHandle::default(),
            };
            let worker_obs = obs.clone();
            let join = std::thread::Builder::new()
                .name(format!("sketchad-shard-{idx}"))
                .spawn(move || {
                    run_worker(
                        idx,
                        rx,
                        detector,
                        worker_shared,
                        snapshot_every,
                        max_batch,
                        worker_obs,
                    )
                })
                .map_err(|e| ServeError::InvalidConfig(format!("spawn failed: {e}")))?;
            shards.push(ShardHandle {
                tx: Some(tx),
                join: Some(join),
                shared,
                recorder,
                obs,
            });
        }
        Ok(Self {
            shards,
            dim: dim.expect("validated shards >= 1"),
            submitted: 0,
            backpressure: config.backpressure,
            partition: config.partition,
            dead: Vec::new(),
        })
    }

    /// Ambient dimensionality every submitted point must have.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Global submission counter (also the next point's sequence number).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    fn route(&self, key: Option<u64>) -> usize {
        let n = self.shards.len() as u64;
        match (self.partition, key) {
            (PartitionStrategy::KeyHash, Some(k)) => (stable_hash(k) % n) as usize,
            // Round-robin, and the keyless fallback under KeyHash.
            _ => (self.submitted % n) as usize,
        }
    }

    /// Submits one point, partitioned by the configured strategy.
    pub fn submit(&mut self, point: Vec<f64>) -> Result<SubmitOutcome, ServeError> {
        self.submit_inner(None, point)
    }

    /// Submits one point with an explicit partition key (used by
    /// [`PartitionStrategy::KeyHash`]; ignored under round-robin).
    pub fn submit_keyed(&mut self, key: u64, point: Vec<f64>) -> Result<SubmitOutcome, ServeError> {
        self.submit_inner(Some(key), point)
    }

    fn submit_inner(
        &mut self,
        key: Option<u64>,
        point: Vec<f64>,
    ) -> Result<SubmitOutcome, ServeError> {
        if point.len() != self.dim {
            return Err(ServeError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        let shard = self.route(key);
        let job = Job {
            seq: self.submitted,
            point,
            enqueued: Instant::now(),
        };
        // Reserve the depth slot *before* sending: the worker may process
        // the job and decrement at any moment after the send lands.
        self.shards[shard].shared.reserve_slot();
        let outcome = match self.backpressure {
            BackpressurePolicy::Block => {
                let handle = &self.shards[shard];
                let tx = handle.tx.as_ref().expect("engine not finished");
                // When observing, probe with try_send first so a full queue
                // is recorded as a QueueBlocked event before the (identical)
                // blocking send; when not observing this is a plain send.
                let send_result = if handle.obs.enabled() {
                    match tx.try_send(job) {
                        Ok(()) => Ok(()),
                        Err(TrySendError::Full(job)) => {
                            handle.obs.incr(Counter::QueueBlocked, 1);
                            handle.obs.event(Event::QueueBlocked {
                                shard,
                                seq: job.seq,
                            });
                            tx.send(job).map_err(|_| ())
                        }
                        Err(TrySendError::Disconnected(_)) => Err(()),
                    }
                } else {
                    tx.send(job).map_err(|_| ())
                };
                match send_result {
                    Ok(()) => SubmitOutcome::Accepted,
                    // The worker dropped its receiver: it panicked.
                    Err(()) => {
                        self.shards[shard].shared.release_slot();
                        return Err(self.harvest_dead_shard(shard));
                    }
                }
            }
            BackpressurePolicy::DropNewest => {
                let tx = self.shards[shard].tx.as_ref().expect("engine not finished");
                match tx.try_send(job) {
                    Ok(()) => SubmitOutcome::Accepted,
                    Err(TrySendError::Full(job)) => {
                        self.shards[shard].shared.release_slot();
                        self.shards[shard]
                            .shared
                            .dropped
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let obs = &self.shards[shard].obs;
                        if obs.enabled() {
                            obs.incr(Counter::QueueDropped, 1);
                            obs.event(Event::QueueDropped {
                                shard,
                                seq: job.seq,
                            });
                        }
                        SubmitOutcome::Dropped
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.shards[shard].shared.release_slot();
                        return Err(self.harvest_dead_shard(shard));
                    }
                }
            }
        };
        // A dropped point still consumes a sequence number: scores report
        // the submission index, and round-robin keeps rotating.
        self.submitted += 1;
        Ok(outcome)
    }

    /// Submits a batch, aggregating accept/drop counts. Stops at the first
    /// hard error (dead shard / dimension mismatch).
    pub fn submit_batch<I>(&mut self, points: I) -> Result<BatchOutcome, ServeError>
    where
        I: IntoIterator<Item = Vec<f64>>,
    {
        let mut outcome = BatchOutcome::default();
        for point in points {
            match self.submit(point)? {
                SubmitOutcome::Accepted => outcome.accepted += 1,
                SubmitOutcome::Dropped => outcome.dropped += 1,
            }
        }
        Ok(outcome)
    }

    /// Joins a shard known to be dead and returns its panic as an error.
    /// The error is also remembered so `finish` re-reports it.
    fn harvest_dead_shard(&mut self, shard: usize) -> ServeError {
        // Close our sender first so the join below cannot wait on us.
        self.shards[shard].tx = None;
        let err = match self.shards[shard].join.take() {
            Some(handle) => match handle.join() {
                Err(payload) => ServeError::WorkerPanicked {
                    shard,
                    message: panic_message(payload.as_ref()),
                },
                // recv() only errors once every sender is dropped, so a
                // clean return with our sender alive should be impossible;
                // report it as a panic-shaped failure rather than hiding it.
                Ok(_) => ServeError::WorkerPanicked {
                    shard,
                    message: "worker exited early without panicking".to_string(),
                },
            },
            None => self
                .dead
                .first()
                .cloned()
                .unwrap_or(ServeError::WorkerPanicked {
                    shard,
                    message: "shard already harvested".to_string(),
                }),
        };
        self.dead.push(err.clone());
        err
    }

    /// The latest model snapshot published by `shard`, if any.
    pub fn snapshot(&self, shard: usize) -> Option<Arc<SubspaceModel>> {
        self.shards[shard].shared.snapshot.load()
    }

    /// A cloneable scorer over `shard`'s snapshot stream; hand these to
    /// reader threads.
    pub fn scorer(&self, shard: usize, score: ScoreKind) -> SnapshotScorer {
        SnapshotScorer::new(Arc::clone(&self.shards[shard].shared.snapshot), score)
    }

    /// Live (approximate) per-shard counters:
    /// `(processed, dropped, queue_depth, queue_high_water)`.
    pub fn live_counters(&self) -> Vec<(u64, u64, usize, usize)> {
        use std::sync::atomic::Ordering::Relaxed;
        self.shards
            .iter()
            .map(|s| {
                (
                    s.shared.processed.load(Relaxed),
                    s.shared.dropped.load(Relaxed),
                    s.shared.depth.load(Relaxed),
                    s.shared.high_water.load(Relaxed),
                )
            })
            .collect()
    }

    /// Graceful shutdown: closes every queue, lets each worker drain what
    /// is already enqueued, joins them all, and merges scores and stats.
    ///
    /// Every worker is joined even when an earlier one failed — no thread
    /// is leaked — and the first failure (including shards that died during
    /// submission) is returned as the error.
    pub fn finish(mut self) -> Result<PipelineReport, ServeError> {
        // Closing the senders is the drain signal.
        for shard in &mut self.shards {
            shard.tx = None;
        }
        let mut first_error = self.dead.first().cloned();
        let mut scores = Vec::new();
        let mut latency = LatencyHistogram::new();
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let Some(handle) = shard.join.take() else {
                continue; // already harvested after a mid-stream panic
            };
            match handle.join() {
                Ok(output) => {
                    use std::sync::atomic::Ordering::Relaxed;
                    scores.extend(output.scores);
                    latency.merge(&output.latency);
                    shard_stats.push(ShardStats {
                        shard: idx,
                        processed: shard.shared.processed.load(Relaxed),
                        dropped: shard.shared.dropped.load(Relaxed),
                        queue_high_water: shard.shared.high_water.load(Relaxed),
                    });
                }
                Err(payload) => {
                    let err = ServeError::WorkerPanicked {
                        shard: idx,
                        message: panic_message(payload.as_ref()),
                    };
                    first_error.get_or_insert(err);
                }
            }
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        scores.sort_unstable_by_key(|&(seq, _)| seq);
        // Roll per-shard recorders up into one pipeline-wide report (only
        // present on instrumented engines).
        let mut obs: Option<ObsReport> = None;
        for shard in &self.shards {
            if let Some(recorder) = &shard.recorder {
                obs.get_or_insert_with(ObsReport::default)
                    .merge(&recorder.snapshot());
            }
        }
        let mut stats = PipelineStats::from_shards(shard_stats, latency);
        if let Some(report) = obs {
            stats = stats.with_obs(report);
        }
        Ok(PipelineReport { scores, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchad_core::DetectorConfig;

    fn fd_factory(shard: usize) -> Box<dyn StreamingDetector + Send> {
        let _ = shard;
        Box::new(
            DetectorConfig::new(2, 8)
                .with_warmup(16)
                .with_seed(7)
                .build_fd(4),
        )
    }

    fn wave(i: u64) -> Vec<f64> {
        let t = i as f64 * 0.13;
        vec![t.sin(), t.cos(), (0.5 * t).sin(), 0.1]
    }

    #[test]
    fn round_robin_covers_all_shards() {
        let mut engine = ServeEngine::start(ServeConfig::new(3), fd_factory).unwrap();
        for i in 0..30 {
            assert_eq!(engine.submit(wave(i)).unwrap(), SubmitOutcome::Accepted);
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 30);
        for s in &report.stats.shards {
            assert_eq!(s.processed, 10, "round-robin must balance exactly");
        }
        // Sequence numbers come back complete and sorted.
        let seqs: Vec<u64> = report.scores.iter().map(|&(q, _)| q).collect();
        assert_eq!(seqs, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn key_hash_is_sticky() {
        let config = ServeConfig::new(4).with_partition(PartitionStrategy::KeyHash);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        for round in 0..5 {
            for key in 0..8u64 {
                engine.submit_keyed(key, wave(round * 8 + key)).unwrap();
            }
        }
        let report = engine.finish().unwrap();
        // Every key's 5 submissions land on one shard, so each shard's
        // processed count is a multiple of 5.
        for s in &report.stats.shards {
            assert_eq!(s.processed % 5, 0, "shard {}: {}", s.shard, s.processed);
        }
        assert_eq!(report.stats.total_processed, 40);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut engine = ServeEngine::start(ServeConfig::new(1), fd_factory).unwrap();
        let err = engine.submit(vec![1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            ServeError::DimensionMismatch {
                expected: 4,
                got: 2
            }
        );
        engine.finish().unwrap();
    }

    #[test]
    fn mismatched_shard_dims_rejected_at_start() {
        let result = ServeEngine::start(ServeConfig::new(2), |shard| {
            let dim = if shard == 0 { 4 } else { 6 };
            Box::new(DetectorConfig::new(2, 8).build_fd(dim)) as Box<dyn StreamingDetector + Send>
        });
        assert!(matches!(result, Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn drop_newest_counts_losses() {
        // Capacity-1 queue and a detector slow enough to guarantee overlap
        // is hard to arrange deterministically; instead flood far more
        // points than a tiny queue admits while the worker is busy warming
        // up, and accept either outcome per point — the invariant checked
        // is accepted + dropped == submitted and processed == accepted.
        let config = ServeConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::DropNewest);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let outcome = engine.submit_batch((0..5_000).map(wave)).unwrap();
        assert_eq!(outcome.accepted + outcome.dropped, 5_000);
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, outcome.accepted);
        assert_eq!(report.stats.total_dropped, outcome.dropped);
        assert_eq!(report.scores.len() as u64, outcome.accepted);
    }

    #[test]
    fn finish_on_empty_engine_is_clean() {
        let engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 0);
        assert!(report.scores.is_empty());
        assert_eq!(report.stats.latency_p50_us, 0.0);
    }

    #[test]
    fn instrumented_pipeline_reports_refresh_and_snapshot_events() {
        let config = ServeConfig::new(2).with_snapshot_every(16);
        let mut engine = ServeEngine::start_instrumented(config, |_shard, recorder| {
            Box::new(
                DetectorConfig::new(2, 8)
                    .with_warmup(16)
                    .with_seed(7)
                    .build_fd(4)
                    .with_recorder(recorder),
            )
        })
        .unwrap();
        engine.submit_batch((0..200).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 200);

        let obs = report.stats.obs.expect("instrumented engine attaches obs");
        // Detector spans from both shards, merged.
        assert_eq!(obs.span("sketch_update").unwrap().count, 200);
        assert!(obs.span("score").unwrap().count > 0);
        assert!(obs.span("model_refresh").unwrap().count > 0);
        // Refresh events from the detectors, snapshot events from the shards
        // (one per snapshot_every batch plus the final drain publish).
        assert!(obs.event_count("refresh_fired") > 0, "no refresh events");
        let snapshots = obs.event_count("snapshot_published");
        assert!(snapshots >= 2, "snapshot events: {snapshots}");
        assert_eq!(obs.counter("snapshots_published") as usize, snapshots);
        assert_eq!(
            obs.span("snapshot_publish").unwrap().count as usize,
            snapshots
        );
        // Queue depth was sampled for every drained job.
        assert_eq!(obs.gauge("queue_depth").unwrap().samples, 200);
    }

    #[test]
    fn uninstrumented_engine_attaches_no_obs() {
        let mut engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        engine.submit_batch((0..20).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert!(report.stats.obs.is_none());
    }

    #[test]
    fn instrumentation_does_not_change_scores() {
        let run = |instrumented: bool| -> Vec<u64> {
            let config = ServeConfig::new(2).with_snapshot_every(8);
            let mut engine = if instrumented {
                ServeEngine::start_instrumented(config, |_shard, recorder| {
                    Box::new(
                        DetectorConfig::new(2, 8)
                            .with_warmup(16)
                            .with_seed(7)
                            .build_fd(4)
                            .with_recorder(recorder),
                    )
                })
                .unwrap()
            } else {
                ServeEngine::start(config, fd_factory).unwrap()
            };
            engine.submit_batch((0..120).map(wave)).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        assert_eq!(run(false), run(true), "instrumented scores diverged");
    }

    #[test]
    fn drop_newest_losses_show_up_as_obs_events() {
        let config = ServeConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::DropNewest);
        let mut engine = ServeEngine::start_instrumented(config, |_shard, recorder| {
            Box::new(
                DetectorConfig::new(2, 8)
                    .with_warmup(16)
                    .with_seed(7)
                    .build_fd(4)
                    .with_recorder(recorder),
            )
        })
        .unwrap();
        let outcome = engine.submit_batch((0..5_000).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        let obs = report.stats.obs.unwrap();
        assert_eq!(obs.counter("queue_dropped"), outcome.dropped);
        // The bounded event log kept (a suffix of) the drop events.
        if outcome.dropped > 0 {
            assert!(obs.event_count("queue_dropped") > 0);
        }
    }

    #[test]
    fn micro_batching_does_not_change_scores() {
        // The worker's micro-batch path must be bitwise identical to strict
        // per-point processing, whatever batch sizes the queue happens to
        // yield.
        let run = |max_batch: usize| -> Vec<u64> {
            let config = ServeConfig::new(2)
                .with_snapshot_every(8)
                .with_max_batch(max_batch);
            let mut engine = ServeEngine::start(config, fd_factory).unwrap();
            engine.submit_batch((0..300).map(wave)).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        let strict = run(1);
        assert_eq!(strict.len(), 300);
        assert_eq!(strict, run(64), "max_batch=64 diverged");
        assert_eq!(strict, run(7), "max_batch=7 diverged");
    }

    #[test]
    fn snapshot_appears_after_enough_points() {
        let config = ServeConfig::new(1).with_snapshot_every(8);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let scorer = engine.scorer(0, ScoreKind::ProjectionDistance);
        engine.submit_batch((0..64).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 64);
        // After drain the final model is published.
        let model = scorer.model().expect("snapshot after warmup + drain");
        assert!(model.k() >= 1);
        assert!(scorer.score(&wave(1000)).unwrap().is_finite());
        assert!(scorer.generation() >= 1);
    }
}
