//! The sharded serving engine.

use crate::config::{stable_hash, BackpressurePolicy, PartitionStrategy, ServeConfig};
use crate::error::{panic_message, ServeError};
use crate::quarantine::Quarantine;
use crate::queue::{JobQueue, PushError};
use crate::ring::{DeathWatch, ShardChannel, SpscRing};
use crate::shard::{run_supervised, Job, ShardShared, WorkerConfig};
use crate::snapshot::SnapshotScorer;
use crate::stats::{LatencyHistogram, PipelineStats, ShardStats};
use crate::telemetry::{EngineProbe, TelemetryConfig, TelemetryHandle};
use sketchad_core::{validate_point, InputViolation, ScoreKind, StreamingDetector, SubspaceModel};
use sketchad_durable::{self as durable, StateStore};
use sketchad_obs::{Counter, Event, MetricsRecorder, ObsReport, Recorder, RecorderHandle, Sampler};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Outcome of submitting one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The point was enqueued and will be scored.
    Accepted,
    /// The point was discarded at a full queue (`DropNewest` policy only).
    Dropped,
    /// The point failed input validation (non-finite component or wrong
    /// dimension) and was quarantined instead of enqueued.
    Rejected(InputViolation),
    /// The point was an update the pipeline refused in order to stay
    /// available: the engine is read-only, or the target shard has
    /// degraded. Reads against published snapshots keep working.
    Shed,
}

/// Outcome of a batched submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchOutcome {
    /// Points enqueued.
    pub accepted: u64,
    /// Points discarded at full queues.
    pub dropped: u64,
    /// Points quarantined by input validation.
    pub rejected: u64,
    /// Points shed at submit time (read-only engine or degraded shard).
    /// `ShedOldest` evictions of *previously accepted* points are counted
    /// in [`PipelineStats::total_shed`], not here.
    pub shed: u64,
}

impl BatchOutcome {
    /// Every submitted point landed exactly one way.
    pub fn submitted(&self) -> u64 {
        self.accepted + self.dropped + self.rejected + self.shed
    }
}

/// Everything the pipeline produced, returned by [`ServeEngine::finish`].
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// `(sequence, score)` for every scored point, sorted by the global
    /// submission sequence. Dropped, rejected, shed, and crash-lost
    /// sequences are simply absent.
    pub scores: Vec<(u64, f64)>,
    /// Final pipeline statistics.
    pub stats: PipelineStats,
    /// Rows input validation refused, retained up to the configured
    /// capacity for inspection.
    pub quarantine: Quarantine,
}

impl PipelineReport {
    /// The scores alone, in submission order (sequence numbers discarded).
    pub fn scores_in_order(&self) -> Vec<f64> {
        self.scores.iter().map(|&(_, s)| s).collect()
    }
}

struct ShardHandle {
    channel: Arc<ShardChannel>,
    join: Option<JoinHandle<crate::shard::ShardOutput>>,
    shared: Arc<ShardShared>,
    /// This shard's metrics recorder; `None` on uninstrumented engines.
    /// The engine snapshots and merges these at [`ServeEngine::finish`].
    recorder: Option<Arc<MetricsRecorder>>,
    /// Handle over `recorder` for the submit path (no-op when `None`).
    obs: RecorderHandle,
}

/// The factory every shard shares: rebuilding a panicked shard's detector
/// happens on the worker thread, so the factory must be `Send` and live in
/// a mutex (builds are rare — startup and restarts — so contention is nil).
type SharedFactory =
    Arc<Mutex<dyn FnMut(usize, RecorderHandle) -> Box<dyn StreamingDetector + Send> + Send>>;

/// Sharded concurrent serving engine.
///
/// Partitions submitted points across `N` worker shards, each owning one
/// [`StreamingDetector`] behind a bounded queue. The single-writer rule —
/// only the shard's worker thread ever calls `process` — keeps each shard's
/// score sequence deterministic; concurrent readers score against the
/// shard's published [snapshot](crate::SnapshotScorer) instead of touching
/// the live detector.
///
/// ## Failure domains
///
/// Submitted rows are validated before they can reach a detector: rows
/// with non-finite components or the wrong dimension are quarantined
/// ([`SubmitOutcome::Rejected`]) rather than poisoning the sketch. A
/// detector panic is contained to its shard — the worker restarts from the
/// last published snapshot up to [`ServeConfig::max_restarts`] times, after
/// which the shard degrades to shed-with-count while every other shard (and
/// every snapshot reader) keeps running. [`finish`](Self::finish) then
/// reports exact loss accounting:
/// `scored + dropped + rejected + shed + crash_lost == submitted`.
///
/// ```
/// use sketchad_core::DetectorConfig;
/// use sketchad_serve::{ServeConfig, ServeEngine};
///
/// let mut engine = ServeEngine::start(ServeConfig::new(2), |_shard| {
///     Box::new(DetectorConfig::new(2, 8).with_warmup(16).build_fd(4))
/// })
/// .unwrap();
/// for i in 0..100u32 {
///     let t = i as f64 * 0.1;
///     engine.submit(vec![t.sin(), t.cos(), 0.0, 0.0]).unwrap();
/// }
/// // A poison row is quarantined, not processed.
/// engine.submit(vec![f64::NAN, 0.0, 0.0, 0.0]).unwrap();
/// let report = engine.finish().unwrap();
/// assert_eq!(report.stats.total_processed, 100);
/// assert_eq!(report.stats.total_rejected, 1);
/// assert_eq!(report.quarantine.total(), 1);
/// ```
pub struct ServeEngine {
    shards: Vec<ShardHandle>,
    dim: usize,
    /// Global submission counter. Atomic (not plain `u64`) so the telemetry
    /// sampler can read it live; submission itself stays single-writer.
    submitted: Arc<AtomicU64>,
    backpressure: BackpressurePolicy,
    partition: PartitionStrategy,
    max_batch: usize,
    read_only: bool,
    quarantine: Quarantine,
    /// Errors from shards discovered dead during submission; reported again
    /// (first one) by `finish` so they cannot be silently lost.
    dead: Vec<ServeError>,
    /// The live telemetry sampler, when [`start_telemetry`]
    /// (Self::start_telemetry) is active; stopped by `finish` after the
    /// workers join so the final frame records the quiesced state.
    telemetry: Option<Sampler>,
}

impl ServeEngine {
    /// Starts `config.shards` worker threads, building each shard's
    /// detector with `factory(shard_index)`.
    ///
    /// Every detector must report the same [`dim`](StreamingDetector::dim);
    /// for deterministic sharded scoring they should also be identically
    /// configured (same seeds per shard are fine — shards see disjoint
    /// substreams). The factory is also how a panicked shard's worker is
    /// rebuilt, hence the `Send + 'static` bounds.
    pub fn start<F>(config: ServeConfig, mut factory: F) -> Result<Self, ServeError>
    where
        F: FnMut(usize) -> Box<dyn StreamingDetector + Send> + Send + 'static,
    {
        Self::start_inner(
            config,
            Arc::new(Mutex::new(move |idx: usize, _h: RecorderHandle| {
                factory(idx)
            })),
            false,
        )
    }

    /// Opens the engine against [`ServeConfig::state_dir`], warm-restarting
    /// every shard from its durable state before accepting traffic.
    ///
    /// For each shard: the newest valid on-disk snapshot (if any) is
    /// restored into the freshly-built detector via
    /// [`StreamingDetector::restore_state`], the WAL rows past it are
    /// replayed through [`StreamingDetector::process`], and the recovered
    /// model is published to the shard's snapshot cell — all before the
    /// worker thread spawns, so readers never observe a pre-recovery blank
    /// and the first submitted point scores against the recovered state.
    /// Recovery is deterministic: detectors round-trip their state bitwise
    /// and replay is ordered, so two recoveries from the same directory
    /// produce bit-identical detectors.
    ///
    /// With no `state_dir` configured (or an empty/missing directory) this
    /// behaves exactly like [`start`](Self::start) — a cold start. Recovery
    /// counts surface in [`PipelineStats`] (`replayed`,
    /// `recovered_generation`, `total_replayed`, `recovered_shards`).
    ///
    /// ```no_run
    /// use sketchad_core::DetectorConfig;
    /// use sketchad_serve::{ServeConfig, ServeEngine};
    ///
    /// let config = ServeConfig::new(2).with_state_dir("/var/lib/sketchad");
    /// let mut engine = ServeEngine::open_or_recover(config, |_shard| {
    ///     Box::new(DetectorConfig::new(2, 8).with_warmup(16).build_fd(4))
    /// })
    /// .unwrap();
    /// engine.submit(vec![0.0; 4]).unwrap();
    /// ```
    pub fn open_or_recover<F>(config: ServeConfig, factory: F) -> Result<Self, ServeError>
    where
        F: FnMut(usize) -> Box<dyn StreamingDetector + Send> + Send + 'static,
    {
        // `start` already performs recovery whenever `state_dir` is set;
        // this name is the documented entry point for that behaviour.
        Self::start(config, factory)
    }

    /// Like [`start`](Self::start), but gives every shard its own
    /// [`MetricsRecorder`], merged into [`PipelineStats::obs`] at
    /// [`finish`](Self::finish).
    ///
    /// The factory receives the shard's [`RecorderHandle`] and should
    /// install it on the detector it builds (e.g.
    /// `SketchDetector::with_recorder`) so detector-level spans land in the
    /// same per-shard report as the engine's queue events. The engine itself
    /// records queue-depth gauges, snapshot publications, and
    /// blocked/dropped/rejected/shed submissions on that handle either way.
    /// A rebuilt worker reuses its shard's original recorder.
    ///
    /// ```
    /// use sketchad_core::DetectorConfig;
    /// use sketchad_serve::{ServeConfig, ServeEngine};
    ///
    /// let mut engine = ServeEngine::start_instrumented(
    ///     ServeConfig::new(2).with_snapshot_every(16),
    ///     |_shard, recorder| {
    ///         let det = DetectorConfig::new(2, 8)
    ///             .with_warmup(16)
    ///             .build_fd(4)
    ///             .with_recorder(recorder);
    ///         Box::new(det)
    ///     },
    /// )
    /// .unwrap();
    /// for i in 0..100u32 {
    ///     let t = i as f64 * 0.1;
    ///     engine.submit(vec![t.sin(), t.cos(), 0.0, 0.0]).unwrap();
    /// }
    /// let report = engine.finish().unwrap();
    /// let obs = report.stats.obs.expect("instrumented engine attaches obs");
    /// assert_eq!(obs.span("sketch_update").unwrap().count, 100);
    /// ```
    pub fn start_instrumented<F>(config: ServeConfig, factory: F) -> Result<Self, ServeError>
    where
        F: FnMut(usize, RecorderHandle) -> Box<dyn StreamingDetector + Send> + Send + 'static,
    {
        Self::start_inner(config, Arc::new(Mutex::new(factory)), true)
    }

    fn start_inner(
        config: ServeConfig,
        factory: SharedFactory,
        instrument: bool,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        // Phase 1, serial: build every shard's detector through the shared
        // factory. Factories may be stateful (seeded generators, counters),
        // so the call order — shard 0 first, ascending — is part of the
        // determinism contract and must not depend on recovery timing.
        let mut prepared = Vec::with_capacity(config.shards);
        let mut dim = None;
        for idx in 0..config.shards {
            let recorder = instrument.then(|| Arc::new(MetricsRecorder::new()));
            let obs = match &recorder {
                Some(r) => RecorderHandle::from(Arc::clone(r) as Arc<dyn Recorder>),
                None => RecorderHandle::default(),
            };
            let detector = {
                let mut build = factory.lock().unwrap_or_else(|e| e.into_inner());
                build(idx, obs.clone())
            };
            let d = detector.dim();
            match dim {
                None => dim = Some(d),
                Some(expected) if expected != d => {
                    return Err(ServeError::InvalidConfig(format!(
                        "shard {idx} detector has dim {d}, shard 0 has dim {expected}"
                    )));
                }
                Some(_) => {}
            }
            // The ring is the default ingest channel; the condvar queue
            // stays for ShedOldest (sender-side eviction needs shared
            // access to the buffer) and the legacy-ingest bench knob.
            let use_ring = !config.legacy_ingest
                && !matches!(config.backpressure, BackpressurePolicy::ShedOldest);
            let channel = Arc::new(if use_ring {
                ShardChannel::Ring(SpscRing::new(config.queue_capacity))
            } else {
                ShardChannel::Queue(JobQueue::new(config.queue_capacity))
            });
            let shared = Arc::new(ShardShared::default());
            prepared.push(PreparedShard {
                detector,
                channel,
                shared,
                recorder,
                obs,
            });
        }
        // Phase 2: warm restart — restore each detector from durable state
        // and publish its model *before* the worker spawns, so the first
        // point a shard scores already sees the recovered model and
        // snapshot readers never observe a pre-recovery blank. Shards
        // recover independently (separate directories, separate
        // detectors), so WAL replay — the expensive part of a warm restart
        // — runs in one worker thread per shard. Each shard's replay is
        // internally ordered and detectors round-trip bitwise, so the
        // recovered models are identical to sequential recovery; only the
        // wall clock changes.
        let mut stores: Vec<Option<StateStore>> = match &config.state_dir {
            Some(root) => {
                if config.shards == 1 {
                    let store = recover_shard(root, 0, &config, &mut prepared[0])?;
                    vec![Some(store)]
                } else {
                    let results: Vec<Result<StateStore, ServeError>> = std::thread::scope(|s| {
                        let joins: Vec<_> = prepared
                            .iter_mut()
                            .enumerate()
                            .map(|(idx, shard)| {
                                let config = &config;
                                std::thread::Builder::new()
                                    .name(format!("sketchad-recover-{idx}"))
                                    .spawn_scoped(s, move || {
                                        recover_shard(root, idx, config, shard)
                                    })
                                    .expect("spawn recovery worker")
                            })
                            .collect();
                        joins
                            .into_iter()
                            .map(|j| j.join().expect("recovery worker panicked"))
                            .collect()
                    });
                    // Surface the lowest-shard error, matching what the
                    // old sequential loop reported.
                    let mut stores = Vec::with_capacity(results.len());
                    for result in results {
                        stores.push(Some(result?));
                    }
                    stores
                }
            }
            None => (0..config.shards).map(|_| None).collect(),
        };
        // Phase 3, serial: spawn the worker threads.
        let mut shards = Vec::with_capacity(config.shards);
        for (idx, prep) in prepared.into_iter().enumerate() {
            let PreparedShard {
                detector,
                channel,
                shared,
                recorder,
                obs,
            } = prep;
            let store = stores[idx].take();
            let worker_cfg = WorkerConfig {
                shard: idx,
                snapshot_every: config.snapshot_every,
                max_batch: config.max_batch,
                max_restarts: config.max_restarts,
                checkpoint_every: config.checkpoint_every,
                refresh_every: config.refresh_every,
            };
            let rebuild = {
                let factory = Arc::clone(&factory);
                let obs = obs.clone();
                Box::new(move || {
                    let mut build = factory.lock().unwrap_or_else(|e| e.into_inner());
                    build(idx, obs.clone())
                }) as crate::shard::DetectorRebuild
            };
            let worker_channel = Arc::clone(&channel);
            let worker_shared = Arc::clone(&shared);
            let worker_obs = obs.clone();
            let join = std::thread::Builder::new()
                .name(format!("sketchad-shard-{idx}"))
                .spawn(move || {
                    let mut watch = DeathWatch::arm(Arc::clone(&worker_channel));
                    let output = run_supervised(
                        worker_cfg,
                        worker_channel,
                        detector,
                        rebuild,
                        worker_shared,
                        worker_obs,
                        store,
                    );
                    watch.disarm();
                    output
                })
                .map_err(|e| ServeError::InvalidConfig(format!("spawn failed: {e}")))?;
            shards.push(ShardHandle {
                channel,
                join: Some(join),
                shared,
                recorder,
                obs,
            });
        }
        Ok(Self {
            shards,
            dim: dim.expect("validated shards >= 1"),
            submitted: Arc::new(AtomicU64::new(0)),
            backpressure: config.backpressure,
            partition: config.partition,
            max_batch: config.max_batch,
            read_only: false,
            quarantine: Quarantine::new(config.quarantine_capacity),
            dead: Vec::new(),
            telemetry: None,
        })
    }

    /// Starts live telemetry: a background sampler snapshots every shard's
    /// counters (and, on instrumented engines, their recorders) into
    /// bounded time series at the configured period, optionally exporting
    /// them over a Prometheus HTTP endpoint and/or a JSONL flight recorder.
    ///
    /// Sampling is a pure read — scores stay bitwise identical with the
    /// sampler running. The sampler stops inside [`finish`](Self::finish),
    /// *after* the workers join, so the final frame (and the last flight-
    /// recorder line) records the quiesced terminal state, where the
    /// conservation identity holds exactly.
    ///
    /// Errors with [`std::io::ErrorKind::AlreadyExists`] when telemetry is
    /// already running, and passes through exporter I/O errors (bind
    /// failure, unwritable flight path).
    pub fn start_telemetry(
        &mut self,
        config: &TelemetryConfig,
    ) -> std::io::Result<TelemetryHandle> {
        if self.telemetry.is_some() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "telemetry sampler already running",
            ));
        }
        let probe = EngineProbe {
            shards: self.shards.iter().map(|s| Arc::clone(&s.shared)).collect(),
            recorders: self
                .shards
                .iter()
                .map(|s| s.recorder.as_ref().map(Arc::clone))
                .collect(),
            submitted: Arc::clone(&self.submitted),
            started: Instant::now(),
            // One in-flight micro-batch per worker, one reserved slot per
            // shard, one mid-flight submission.
            slack_limit: (self.shards.len() * (self.max_batch + 1) + 1) as i64,
        };
        let (sampler, handle) = config.launch(probe)?;
        self.telemetry = Some(sampler);
        Ok(handle)
    }

    /// Ambient dimensionality every submitted point must have.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Global submission counter (also the next point's sequence number).
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Relaxed)
    }

    /// Switches the engine into (or out of) read-only mode. While read-only,
    /// every submission is shed — counted, never enqueued — and snapshot
    /// readers keep scoring against the latest published (now stale) models.
    /// The overload escape hatch: scoring stays available while updates
    /// stop.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Whether the engine is currently shedding all updates.
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Whether `shard` has exhausted its restart budget and degraded.
    pub fn is_degraded(&self, shard: usize) -> bool {
        self.shards[shard].shared.degraded.load(Relaxed)
    }

    fn route(&self, key: Option<u64>) -> usize {
        let n = self.shards.len() as u64;
        match (self.partition, key) {
            (PartitionStrategy::KeyHash, Some(k)) => (stable_hash(k) % n) as usize,
            // Round-robin, and the keyless fallback under KeyHash.
            _ => (self.submitted.load(Relaxed) % n) as usize,
        }
    }

    /// Submits one point, partitioned by the configured strategy.
    pub fn submit(&mut self, point: Vec<f64>) -> Result<SubmitOutcome, ServeError> {
        self.submit_inner(None, point)
    }

    /// Submits one point with an explicit partition key (used by
    /// [`PartitionStrategy::KeyHash`]; ignored under round-robin).
    pub fn submit_keyed(&mut self, key: u64, point: Vec<f64>) -> Result<SubmitOutcome, ServeError> {
        self.submit_inner(Some(key), point)
    }

    fn submit_inner(
        &mut self,
        key: Option<u64>,
        point: Vec<f64>,
    ) -> Result<SubmitOutcome, ServeError> {
        let shard = self.route(key);
        let seq = self.submitted.load(Relaxed);
        // Input hygiene first: a poison row is quarantined whatever the
        // overload state, so it can never reach (and corrupt) a detector.
        if let Err(violation) = validate_point(&point, self.dim) {
            self.submitted.fetch_add(1, Relaxed);
            let handle = &self.shards[shard];
            handle.shared.rejected.fetch_add(1, Relaxed);
            if handle.obs.enabled() {
                handle.obs.incr(Counter::PointsRejected, 1);
                handle.obs.event(Event::PointRejected {
                    shard,
                    seq,
                    reason: violation.label().to_string(),
                });
            }
            self.quarantine.push(seq, violation, point);
            return Ok(SubmitOutcome::Rejected(violation));
        }
        // Availability shedding: a read-only engine or a degraded shard
        // refuses the update but the submission still succeeds — reads stay
        // up, accounting stays exact.
        if self.read_only || self.shards[shard].shared.degraded.load(Relaxed) {
            self.submitted.fetch_add(1, Relaxed);
            let handle = &self.shards[shard];
            handle.shared.shed.fetch_add(1, Relaxed);
            if handle.obs.enabled() {
                handle.obs.incr(Counter::PointsShed, 1);
                handle.obs.event(Event::QueueShed { shard, seq });
            }
            return Ok(SubmitOutcome::Shed);
        }
        let job = Job {
            seq,
            point,
            enqueued: Instant::now(),
        };
        // Reserve the depth slot *before* sending: the worker may process
        // the job and decrement at any moment after the send lands.
        self.shards[shard].shared.reserve_slot();
        let outcome = match self.backpressure {
            BackpressurePolicy::Block => {
                let handle = &self.shards[shard];
                // When observing, probe with try_push first so a full queue
                // is recorded as a QueueBlocked event before the (identical)
                // blocking push; when not observing this is a plain push.
                let push_result = if handle.obs.enabled() {
                    match handle.channel.try_push(job) {
                        Ok(()) => Ok(()),
                        Err(PushError::Full(job)) => {
                            handle.obs.incr(Counter::QueueBlocked, 1);
                            handle.obs.event(Event::QueueBlocked {
                                shard,
                                seq: job.seq,
                            });
                            handle.channel.push_block(job)
                        }
                        Err(dead) => Err(dead),
                    }
                } else {
                    handle.channel.push_block(job)
                };
                match push_result {
                    Ok(()) => SubmitOutcome::Accepted,
                    // The worker thread itself is gone (not a contained
                    // detector panic — those are handled in-thread).
                    Err(_) => {
                        self.shards[shard].shared.release_slot();
                        return Err(self.harvest_dead_shard(shard));
                    }
                }
            }
            BackpressurePolicy::DropNewest => {
                let handle = &self.shards[shard];
                match handle.channel.try_push(job) {
                    Ok(()) => SubmitOutcome::Accepted,
                    Err(PushError::Full(job)) => {
                        handle.shared.release_slot();
                        handle.shared.dropped.fetch_add(1, Relaxed);
                        if handle.obs.enabled() {
                            handle.obs.incr(Counter::QueueDropped, 1);
                            handle.obs.event(Event::QueueDropped {
                                shard,
                                seq: job.seq,
                            });
                        }
                        SubmitOutcome::Dropped
                    }
                    Err(PushError::Dead(_)) => {
                        self.shards[shard].shared.release_slot();
                        return Err(self.harvest_dead_shard(shard));
                    }
                }
            }
            BackpressurePolicy::ShedOldest => {
                let handle = &self.shards[shard];
                match handle.channel.push_shed_oldest(job) {
                    Ok(None) => SubmitOutcome::Accepted,
                    Ok(Some(evicted)) => {
                        // The new point took the evicted one's slot.
                        handle.shared.release_slot();
                        handle.shared.shed.fetch_add(1, Relaxed);
                        if handle.obs.enabled() {
                            handle.obs.incr(Counter::PointsShed, 1);
                            handle.obs.event(Event::QueueShed {
                                shard,
                                seq: evicted.seq,
                            });
                        }
                        SubmitOutcome::Accepted
                    }
                    Err(_) => {
                        self.shards[shard].shared.release_slot();
                        return Err(self.harvest_dead_shard(shard));
                    }
                }
            }
        };
        // A dropped point still consumes a sequence number: scores report
        // the submission index, and round-robin keeps rotating.
        self.submitted.fetch_add(1, Relaxed);
        Ok(outcome)
    }

    /// Submits a batch, aggregating per-outcome counts. Stops at the first
    /// hard error (a dead worker thread).
    ///
    /// This is the convenience form that loops [`submit`](Self::submit) per
    /// point; high-throughput callers holding their rows in a slice should
    /// prefer [`submit_batch_rows`](Self::submit_batch_rows), which routes
    /// the whole batch with one channel reservation per shard.
    pub fn submit_batch<I>(&mut self, points: I) -> Result<BatchOutcome, ServeError>
    where
        I: IntoIterator<Item = Vec<f64>>,
    {
        let mut outcome = BatchOutcome::default();
        for point in points {
            match self.submit(point)? {
                SubmitOutcome::Accepted => outcome.accepted += 1,
                SubmitOutcome::Dropped => outcome.dropped += 1,
                SubmitOutcome::Rejected(_) => outcome.rejected += 1,
                SubmitOutcome::Shed => outcome.shed += 1,
            }
        }
        Ok(outcome)
    }

    /// Submits a slice of rows through the batched fast path: rows are
    /// hash-routed into per-shard staging buffers (validation, quarantine,
    /// and shed accounting run per row, exactly as in per-point
    /// submission), then each shard's group is flushed with **one channel
    /// reservation per shard per batch** instead of one push per point.
    ///
    /// Every shard sees the same points in the same order as `rows.len()`
    /// calls to [`submit`](Self::submit) would deliver, so scores are
    /// bitwise identical to per-point submission:
    ///
    /// ```
    /// use sketchad_core::{DetectorConfig, StreamingDetector};
    /// use sketchad_serve::{ServeConfig, ServeEngine};
    ///
    /// fn factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    ///     Box::new(DetectorConfig::new(2, 8).with_warmup(16).with_seed(7).build_fd(4))
    /// }
    /// let rows: Vec<Vec<f64>> = (0..100u32)
    ///     .map(|i| {
    ///         let t = f64::from(i) * 0.1;
    ///         vec![t.sin(), t.cos(), 0.0, 0.0]
    ///     })
    ///     .collect();
    ///
    /// // One batched submission …
    /// let mut batched = ServeEngine::start(ServeConfig::new(2), factory).unwrap();
    /// let outcome = batched.submit_batch_rows(&rows).unwrap();
    /// assert_eq!(outcome.accepted, 100);
    ///
    /// // … scores bitwise identically to 100 per-point submissions.
    /// let mut per_point = ServeEngine::start(ServeConfig::new(2), factory).unwrap();
    /// for row in &rows {
    ///     per_point.submit(row.clone()).unwrap();
    /// }
    /// let batched = batched.finish().unwrap();
    /// let per_point = per_point.finish().unwrap();
    /// assert_eq!(batched.scores_in_order(), per_point.scores_in_order());
    /// ```
    ///
    /// Accounting differences from the per-point path, all metrics-only:
    /// queue-wait latency is measured from one batch-wide timestamp, a
    /// stalled `Block` flush records a single `queue_blocked` event per
    /// shard per batch rather than one per blocked point, and the depth
    /// reservation, high-water update, and degraded-shard check each run
    /// once per shard per batch instead of once per row.
    pub fn submit_batch_rows(&mut self, rows: &[Vec<f64>]) -> Result<BatchOutcome, ServeError> {
        self.submit_batch_rows_parallel(rows, 1)
    }

    /// [`submit_batch_rows`](Self::submit_batch_rows) driven by `producers`
    /// concurrent lanes: the multi-core ingest boundary.
    ///
    /// The batch's sequence range is claimed once, then the rows are fanned
    /// out across `min(producers, shards)` scoped producer threads. Lane
    /// `p` *owns* every shard `s` with `s % producers == p`: it walks the
    /// whole slice but validates, stages, and flushes only the rows whose
    /// sequence routes to a shard it owns. Shard ownership is what keeps
    /// the lock-free shard rings sound — each ring still sees exactly one
    /// producer thread — and it is also what keeps scores **bitwise
    /// identical to single-producer submission for every producer count**:
    /// a shard's substream is a pure function of the sequence numbers
    /// (`seq % shards`), never of lane timing.
    ///
    /// What *is* timing-dependent is which points lose under a lossy
    /// policy: `DropNewest` drops and `ShedOldest` evictions depend on how
    /// far each worker has drained when its lane flushes, exactly as they
    /// already do between two single-producer runs. Under `Block` (or
    /// whenever capacity ≥ load, any policy) nothing is lost and the score
    /// stream is reproducible bit-for-bit across producer counts.
    ///
    /// `producers` is clamped to `[1, shards]`; `1` is exactly the serial
    /// batched path. Lanes stop at the first dead worker thread they meet
    /// (other lanes finish their flush), and the first dead shard is
    /// harvested and returned as the error, as in the serial path.
    ///
    /// ```
    /// use sketchad_core::{DetectorConfig, StreamingDetector};
    /// use sketchad_serve::{ServeConfig, ServeEngine};
    ///
    /// fn factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    ///     Box::new(DetectorConfig::new(2, 8).with_warmup(16).with_seed(7).build_fd(4))
    /// }
    /// let rows: Vec<Vec<f64>> = (0..100u32)
    ///     .map(|i| {
    ///         let t = f64::from(i) * 0.1;
    ///         vec![t.sin(), t.cos(), 0.0, 0.0]
    ///     })
    ///     .collect();
    ///
    /// let run = |producers: usize| {
    ///     let mut engine = ServeEngine::start(ServeConfig::new(4), factory).unwrap();
    ///     engine.submit_batch_rows_parallel(&rows, producers).unwrap();
    ///     engine.finish().unwrap().scores_in_order()
    /// };
    /// assert_eq!(run(1), run(4), "producer count changed scores");
    /// ```
    pub fn submit_batch_rows_parallel(
        &mut self,
        rows: &[Vec<f64>],
        producers: usize,
    ) -> Result<BatchOutcome, ServeError> {
        let lanes = producers.clamp(1, self.shards.len());
        let base = self.submitted.fetch_add(rows.len() as u64, Relaxed);
        // Degradation is checked once per shard per batch instead of once
        // per row: a shard that degrades mid-batch sheds from the next
        // batch onward, which is the same lag the per-point path has for
        // points already past its own check.
        let shedding: Vec<bool> = self
            .shards
            .iter()
            .map(|h| self.read_only || h.shared.degraded.load(Relaxed))
            .collect();
        let enqueued = Instant::now();
        let lane_input = LaneInput {
            shards: &self.shards,
            rows,
            base,
            dim: self.dim,
            shedding: &shedding,
            backpressure: self.backpressure,
            enqueued,
        };
        let reports: Vec<LaneReport> = if lanes == 1 {
            vec![run_lane(&lane_input, 0, 1)]
        } else {
            let input = &lane_input;
            std::thread::scope(|s| {
                let joins: Vec<_> = (0..lanes)
                    .map(|lane| {
                        std::thread::Builder::new()
                            .name(format!("sketchad-lane-{lane}"))
                            .spawn_scoped(s, move || run_lane(input, lane, lanes))
                            .expect("spawn producer lane")
                    })
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("producer lane panicked"))
                    .collect()
            })
        };
        let mut outcome = BatchOutcome::default();
        let mut quarantined = Vec::new();
        let mut dead = Vec::new();
        for report in reports {
            outcome.accepted += report.outcome.accepted;
            outcome.dropped += report.outcome.dropped;
            outcome.rejected += report.outcome.rejected;
            outcome.shed += report.outcome.shed;
            quarantined.extend(report.quarantined);
            dead.extend(report.dead);
        }
        // Lanes quarantined their own shards' rows; re-merging by sequence
        // restores the per-point path's eviction order under the capacity
        // bound.
        quarantined.sort_by_key(|(seq, _, _)| *seq);
        for (seq, violation, point) in quarantined {
            self.quarantine.push(seq, violation, point);
        }
        if let Some(&shard) = dead.first() {
            return Err(self.harvest_dead_shard(shard));
        }
        Ok(outcome)
    }

    /// Joins a shard whose worker thread is gone entirely (the supervisor
    /// contains detector panics, so this is a supervisor-level failure) and
    /// returns it as an error. The error is also remembered so `finish`
    /// re-reports it.
    fn harvest_dead_shard(&mut self, shard: usize) -> ServeError {
        self.shards[shard].channel.close();
        let err = match self.shards[shard].join.take() {
            Some(handle) => match handle.join() {
                Err(payload) => ServeError::WorkerPanicked {
                    shard,
                    message: panic_message(payload.as_ref()),
                },
                // A queue marked dead with the thread still returning
                // cleanly should be impossible; report it as a
                // panic-shaped failure rather than hiding it.
                Ok(_) => ServeError::WorkerPanicked {
                    shard,
                    message: "worker exited early without panicking".to_string(),
                },
            },
            None => self
                .dead
                .first()
                .cloned()
                .unwrap_or(ServeError::WorkerPanicked {
                    shard,
                    message: "shard already harvested".to_string(),
                }),
        };
        self.dead.push(err.clone());
        err
    }

    /// The latest model snapshot published by `shard`, if any.
    pub fn snapshot(&self, shard: usize) -> Option<Arc<SubspaceModel>> {
        self.shards[shard].shared.snapshot.load()
    }

    /// A cloneable scorer over `shard`'s snapshot stream; hand these to
    /// reader threads.
    pub fn scorer(&self, shard: usize, score: ScoreKind) -> SnapshotScorer {
        SnapshotScorer::new(Arc::clone(&self.shards[shard].shared.snapshot), score)
    }

    /// Live (approximate) per-shard counters:
    /// `(processed, dropped, queue_depth, queue_high_water)`.
    pub fn live_counters(&self) -> Vec<(u64, u64, usize, usize)> {
        self.shards
            .iter()
            .map(|s| {
                (
                    s.shared.processed.load(Relaxed),
                    s.shared.dropped.load(Relaxed),
                    s.shared.depth.load(Relaxed),
                    s.shared.high_water.load(Relaxed),
                )
            })
            .collect()
    }

    /// Graceful shutdown: closes every queue, lets each worker drain what
    /// is already enqueued, joins them all, and merges scores and stats.
    ///
    /// Every worker is joined even when an earlier one failed — no thread
    /// is leaked. Contained faults (detector panics, degraded shards) do
    /// **not** fail the pipeline; they are reported in the stats. Only a
    /// dead worker *thread* (supervisor failure) returns an error.
    pub fn finish(mut self) -> Result<PipelineReport, ServeError> {
        // Closing the queues is the drain signal.
        for shard in &self.shards {
            shard.channel.close();
        }
        let mut first_error = self.dead.first().cloned();
        let mut scores = Vec::new();
        let mut latency = LatencyHistogram::new();
        let mut shard_stats = Vec::with_capacity(self.shards.len());
        for (idx, shard) in self.shards.iter_mut().enumerate() {
            let Some(handle) = shard.join.take() else {
                continue; // already harvested after a supervisor failure
            };
            match handle.join() {
                Ok(output) => {
                    scores.extend(output.scores);
                    latency.merge(&output.latency);
                    shard_stats.push(ShardStats {
                        shard: idx,
                        processed: shard.shared.processed.load(Relaxed),
                        dropped: shard.shared.dropped.load(Relaxed),
                        queue_high_water: shard.shared.high_water.load(Relaxed),
                        rejected: shard.shared.rejected.load(Relaxed),
                        shed: shard.shared.shed.load(Relaxed),
                        crash_lost: shard.shared.crash_lost.load(Relaxed),
                        restarts: shard.shared.restarts.load(Relaxed),
                        degraded: shard.shared.degraded.load(Relaxed),
                        replayed: shard.shared.replayed.load(Relaxed),
                        recovered_generation: shard.shared.recovered_generation.load(Relaxed),
                    });
                }
                Err(payload) => {
                    let err = ServeError::WorkerPanicked {
                        shard: idx,
                        message: panic_message(payload.as_ref()),
                    };
                    first_error.get_or_insert(err);
                }
            }
        }
        // Workers are quiesced (joined or already harvested): stop the
        // telemetry sampler now so its final frame — and the last flight-
        // recorder line — captures the terminal state, where the
        // conservation identity holds exactly. Happens before the error
        // check so a failed pipeline still flushes its telemetry.
        if let Some(mut sampler) = self.telemetry.take() {
            sampler.stop();
        }
        if let Some(err) = first_error {
            return Err(err);
        }
        scores.sort_unstable_by_key(|&(seq, _)| seq);
        // Roll per-shard recorders up into one pipeline-wide report (only
        // present on instrumented engines).
        let mut obs: Option<ObsReport> = None;
        for shard in &self.shards {
            if let Some(recorder) = &shard.recorder {
                obs.get_or_insert_with(ObsReport::default)
                    .merge(&recorder.snapshot());
            }
        }
        let mut stats = PipelineStats::from_shards(shard_stats, latency);
        if let Some(report) = obs {
            stats = stats.with_obs(report);
        }
        Ok(PipelineReport {
            scores,
            stats,
            quarantine: self.quarantine,
        })
    }
}

/// A shard after phase 1 of startup (detector built, channel and shared
/// state allocated) and before its worker thread spawns. Recovery (phase
/// 2) mutates the detector in place — possibly on a recovery worker
/// thread — and phase 3 consumes the lot into a [`ShardHandle`].
struct PreparedShard {
    detector: Box<dyn StreamingDetector + Send>,
    channel: Arc<ShardChannel>,
    shared: Arc<ShardShared>,
    recorder: Option<Arc<MetricsRecorder>>,
    obs: RecorderHandle,
}

/// Warm-restarts one shard from its durable directory: restore the newest
/// valid snapshot into the detector, replay the WAL rows past it, publish
/// the recovered model, and open the store for writing (which truncates
/// any torn WAL tail and positions the write cursor after the replayed
/// rows). Runs on a per-shard recovery thread when the engine has more
/// than one shard; the logic is identical either way.
fn recover_shard(
    root: &std::path::Path,
    idx: usize,
    config: &ServeConfig,
    prep: &mut PreparedShard,
) -> Result<StateStore, ServeError> {
    let dir = durable::shard_dir(root, idx as u32);
    let durable_err = |message: String| ServeError::Durable {
        shard: idx,
        message,
    };
    let detector = &mut prep.detector;
    let recovered = durable::recover(&dir).map_err(|e| durable_err(e.to_string()))?;
    let mut generation = 0;
    if let Some(snap) = &recovered.snapshot {
        match detector.restore_state(&snap.payload) {
            Ok(true) => generation = snap.generation,
            // Detector kind without a persistence path: its checkpoints
            // can never have been written, so an unreadable payload here
            // means a foreign file.
            Ok(false) => {
                return Err(durable_err(format!(
                    "snapshot generation {} exists but this detector \
                     does not support state restore",
                    snap.generation
                )));
            }
            Err(e) => {
                return Err(durable_err(format!("restoring snapshot: {e}")));
            }
        }
    }
    let replayed = recovered.replay.len() as u64;
    for rec in &recovered.replay {
        detector.process(&rec.row);
    }
    prep.shared.replayed.store(replayed, Relaxed);
    prep.shared.recovered_generation.store(generation, Relaxed);
    if let Some(model) = detector.current_model() {
        prep.shared.snapshot.publish(Arc::new(model.clone()));
    }
    if prep.obs.enabled() && (replayed > 0 || generation > 0) {
        prep.obs.incr(Counter::RowsReplayed, replayed);
        prep.obs.event(Event::ShardRecovered {
            shard: idx,
            generation,
            replayed,
        });
    }
    StateStore::open(&dir, idx as u32, config.fsync).map_err(|e| durable_err(e.to_string()))
}

/// Everything a producer lane needs, borrowed from the engine for the
/// duration of one batch. Shared read-only across lanes; the per-shard
/// mutable state (channels, atomics, recorders) is already thread-safe and
/// partitioned by shard ownership.
struct LaneInput<'a> {
    shards: &'a [ShardHandle],
    rows: &'a [Vec<f64>],
    base: u64,
    dim: usize,
    shedding: &'a [bool],
    backpressure: BackpressurePolicy,
    enqueued: Instant,
}

/// What one producer lane did with its share of a batch.
struct LaneReport {
    outcome: BatchOutcome,
    /// Rows this lane's shards rejected, for the engine to quarantine in
    /// sequence order after the lanes join (`Quarantine` is single-writer).
    quarantined: Vec<(u64, InputViolation, Vec<f64>)>,
    /// Shards whose worker thread was found dead mid-flush; harvested by
    /// the engine after the lanes join (joining needs `&mut`).
    dead: Vec<usize>,
}

/// One producer lane: stages and flushes every row whose shard the lane
/// owns (`shard % lanes == lane`). With `lanes == 1` this is exactly the
/// serial batched submit path.
///
/// Determinism: which rows a shard receives, and in which order, depends
/// only on `(base, shards, validation, shedding)` — all identical across
/// lane counts — never on how lanes interleave.
fn run_lane(input: &LaneInput<'_>, lane: usize, lanes: usize) -> LaneReport {
    let n_shards = input.shards.len();
    let mut report = LaneReport {
        outcome: BatchOutcome::default(),
        quarantined: Vec::new(),
        dead: Vec::new(),
    };
    let mut staged: Vec<VecDeque<Job>> = (0..n_shards).map(|_| VecDeque::new()).collect();
    if lanes == 1 {
        for j in 0..input.rows.len() {
            lane_stage_row(input, j, &mut staged, &mut report);
        }
    } else {
        // A shard's sequences stride the batch with period `n_shards`, so
        // the lane can jump straight to its own rows instead of
        // filter-walking the whole slice: per owned shard, start at the
        // first in-batch sequence routed to it and step by `n_shards`.
        // Per-shard visit order is still ascending-seq — the determinism
        // contract cares only about that, not about interleaving across
        // shards (quarantine entries are re-sorted after the join).
        for shard in (lane..n_shards).step_by(lanes) {
            let offset =
                (shard as u64 + n_shards as u64 - input.base % n_shards as u64) % n_shards as u64;
            let mut j = offset as usize;
            while j < input.rows.len() {
                lane_stage_row(input, j, &mut staged, &mut report);
                j += n_shards;
            }
        }
    }
    for (shard, group) in staged.iter_mut().enumerate() {
        if group.is_empty() {
            continue;
        }
        let handle = &input.shards[shard];
        // One depth reservation per shard per batch (the per-point path
        // reserves before each enqueue; the flush below is the enqueue,
        // so the same reserve-before-send ordering holds).
        handle.shared.reserve_slots(group.len());
        let flushed = match input.backpressure {
            BackpressurePolicy::Block => lane_flush_blocking(handle, shard, group),
            BackpressurePolicy::DropNewest => {
                lane_flush_drop_newest(handle, shard, group, &mut report.outcome)
            }
            BackpressurePolicy::ShedOldest => lane_flush_shed_oldest(handle, shard, group),
        };
        if flushed.is_err() {
            report.dead.push(shard);
        }
    }
    report
}

/// Validates, sheds, or stages row `j` of the batch onto its shard's
/// group. Routing is the same round-robin as per-point submission:
/// `shard = seq % n_shards` (keyless `KeyHash` falls back to it too).
fn lane_stage_row(
    input: &LaneInput<'_>,
    j: usize,
    staged: &mut [VecDeque<Job>],
    report: &mut LaneReport,
) {
    let seq = input.base + j as u64;
    let shard = (seq % input.shards.len() as u64) as usize;
    let row = &input.rows[j];
    if let Err(violation) = validate_point(row, input.dim) {
        let handle = &input.shards[shard];
        handle.shared.rejected.fetch_add(1, Relaxed);
        if handle.obs.enabled() {
            handle.obs.incr(Counter::PointsRejected, 1);
            handle.obs.event(Event::PointRejected {
                shard,
                seq,
                reason: violation.label().to_string(),
            });
        }
        report.quarantined.push((seq, violation, row.clone()));
        report.outcome.rejected += 1;
        return;
    }
    if input.shedding[shard] {
        let handle = &input.shards[shard];
        handle.shared.shed.fetch_add(1, Relaxed);
        if handle.obs.enabled() {
            handle.obs.incr(Counter::PointsShed, 1);
            handle.obs.event(Event::QueueShed { shard, seq });
        }
        report.outcome.shed += 1;
        return;
    }
    staged[shard].push_back(Job {
        seq,
        point: row.clone(),
        enqueued: input.enqueued,
    });
    report.outcome.accepted += 1;
}

/// Flushes one shard's staged group under `Block`: retry batch pushes,
/// yielding while the channel is full, until everything is in. `Err` means
/// the worker thread is dead (reservations already rolled back).
fn lane_flush_blocking(
    handle: &ShardHandle,
    shard: usize,
    staged: &mut VecDeque<Job>,
) -> Result<(), ()> {
    let mut blocked_recorded = false;
    loop {
        match handle.channel.try_push_batch(staged) {
            Ok(_) if staged.is_empty() => return Ok(()),
            Ok(pushed) => {
                if pushed == 0 {
                    if !blocked_recorded && handle.obs.enabled() {
                        blocked_recorded = true;
                        handle.obs.incr(Counter::QueueBlocked, 1);
                        handle.obs.event(Event::QueueBlocked {
                            shard,
                            seq: staged.front().expect("non-empty").seq,
                        });
                    }
                    std::thread::yield_now();
                }
            }
            Err(()) => return abort_lane_flush(handle, staged),
        }
    }
}

/// Flushes one shard's staged group under `DropNewest`: one batch push,
/// everything that did not fit is dropped with exact counts.
fn lane_flush_drop_newest(
    handle: &ShardHandle,
    shard: usize,
    staged: &mut VecDeque<Job>,
    outcome: &mut BatchOutcome,
) -> Result<(), ()> {
    match handle.channel.try_push_batch(staged) {
        Ok(_) => {
            for job in staged.drain(..) {
                handle.shared.release_slot();
                handle.shared.dropped.fetch_add(1, Relaxed);
                if handle.obs.enabled() {
                    handle.obs.incr(Counter::QueueDropped, 1);
                    handle.obs.event(Event::QueueDropped {
                        shard,
                        seq: job.seq,
                    });
                }
                outcome.accepted -= 1;
                outcome.dropped += 1;
            }
            Ok(())
        }
        Err(()) => abort_lane_flush(handle, staged),
    }
}

/// Flushes one shard's staged group under `ShedOldest` (always the queue
/// channel): per-job pushes, evictions counted as shed.
fn lane_flush_shed_oldest(
    handle: &ShardHandle,
    shard: usize,
    staged: &mut VecDeque<Job>,
) -> Result<(), ()> {
    while let Some(job) = staged.pop_front() {
        match handle.channel.push_shed_oldest(job) {
            Ok(None) => {}
            Ok(Some(evicted)) => {
                // The new point took the evicted one's slot.
                handle.shared.release_slot();
                handle.shared.shed.fetch_add(1, Relaxed);
                if handle.obs.enabled() {
                    handle.obs.incr(Counter::PointsShed, 1);
                    handle.obs.event(Event::QueueShed {
                        shard,
                        seq: evicted.seq,
                    });
                }
            }
            Err(_) => {
                // The in-hand job was already popped from `staged`; roll
                // its reservation back separately.
                handle.shared.release_slot();
                return abort_lane_flush(handle, staged);
            }
        }
    }
    Ok(())
}

/// A dead worker thread surfaced mid-flush: roll back the depth
/// reservations for everything unflushed and return the flush's `Err`.
/// The caller reports the shard so the engine can join (harvest) the dead
/// worker once the lanes are back.
fn abort_lane_flush(handle: &ShardHandle, staged: &mut VecDeque<Job>) -> Result<(), ()> {
    for _ in 0..staged.len() {
        handle.shared.release_slot();
    }
    staged.clear();
    Err(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sketchad_core::DetectorConfig;

    fn fd_factory(shard: usize) -> Box<dyn StreamingDetector + Send> {
        let _ = shard;
        Box::new(
            DetectorConfig::new(2, 8)
                .with_warmup(16)
                .with_seed(7)
                .build_fd(4),
        )
    }

    fn wave(i: u64) -> Vec<f64> {
        let t = i as f64 * 0.13;
        vec![t.sin(), t.cos(), (0.5 * t).sin(), 0.1]
    }

    #[test]
    fn round_robin_covers_all_shards() {
        let mut engine = ServeEngine::start(ServeConfig::new(3), fd_factory).unwrap();
        for i in 0..30 {
            assert_eq!(engine.submit(wave(i)).unwrap(), SubmitOutcome::Accepted);
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 30);
        for s in &report.stats.shards {
            assert_eq!(s.processed, 10, "round-robin must balance exactly");
        }
        // Sequence numbers come back complete and sorted.
        let seqs: Vec<u64> = report.scores.iter().map(|&(q, _)| q).collect();
        assert_eq!(seqs, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn key_hash_is_sticky() {
        let config = ServeConfig::new(4).with_partition(PartitionStrategy::KeyHash);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        for round in 0..5 {
            for key in 0..8u64 {
                engine.submit_keyed(key, wave(round * 8 + key)).unwrap();
            }
        }
        let report = engine.finish().unwrap();
        // Every key's 5 submissions land on one shard, so each shard's
        // processed count is a multiple of 5.
        for s in &report.stats.shards {
            assert_eq!(s.processed % 5, 0, "shard {}: {}", s.shard, s.processed);
        }
        assert_eq!(report.stats.total_processed, 40);
    }

    #[test]
    fn wrong_dimension_is_quarantined_not_fatal() {
        let mut engine = ServeEngine::start(ServeConfig::new(1), fd_factory).unwrap();
        let outcome = engine.submit(vec![1.0, 2.0]).unwrap();
        assert_eq!(
            outcome,
            SubmitOutcome::Rejected(InputViolation::WrongDim {
                expected: 4,
                got: 2
            })
        );
        // The stream keeps flowing afterwards.
        engine.submit(wave(0)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 1);
        assert_eq!(report.stats.total_rejected, 1);
        assert_eq!(report.quarantine.total(), 1);
        let row = report.quarantine.rows().next().unwrap();
        assert_eq!(row.seq, 0);
        assert_eq!(row.point, vec![1.0, 2.0]);
    }

    #[test]
    fn poison_rows_are_quarantined_and_never_scored() {
        let mut engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        let mut expected_rejects = 0u64;
        for i in 0..200u64 {
            if i % 10 == 3 {
                let mut p = wave(i);
                p[(i as usize) % 4] = if i % 20 == 3 { f64::NAN } else { f64::INFINITY };
                expected_rejects += 1;
                assert!(matches!(
                    engine.submit(p).unwrap(),
                    SubmitOutcome::Rejected(InputViolation::NonFinite { .. })
                ));
            } else {
                assert_eq!(engine.submit(wave(i)).unwrap(), SubmitOutcome::Accepted);
            }
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_rejected, expected_rejects);
        assert_eq!(report.stats.total_processed, 200 - expected_rejects);
        assert_eq!(report.quarantine.total(), expected_rejects);
        for &(_, score) in &report.scores {
            assert!(score.is_finite(), "a poison row leaked into a detector");
        }
        // Conservation: every submission landed exactly one way.
        assert_eq!(
            report.stats.total_processed
                + report.stats.total_dropped
                + report.stats.total_rejected
                + report.stats.total_shed
                + report.stats.total_crash_lost,
            200
        );
    }

    #[test]
    fn quarantine_respects_capacity_bound() {
        let config = ServeConfig::new(1).with_quarantine_capacity(3);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        for _ in 0..10 {
            engine.submit(vec![f64::NAN, 0.0, 0.0, 0.0]).unwrap();
        }
        let report = engine.finish().unwrap();
        assert_eq!(report.quarantine.total(), 10);
        assert_eq!(report.quarantine.len(), 3);
        assert_eq!(report.quarantine.evicted(), 7);
    }

    #[test]
    fn mismatched_shard_dims_rejected_at_start() {
        let result = ServeEngine::start(ServeConfig::new(2), |shard| {
            let dim = if shard == 0 { 4 } else { 6 };
            Box::new(DetectorConfig::new(2, 8).build_fd(dim)) as Box<dyn StreamingDetector + Send>
        });
        assert!(matches!(result, Err(ServeError::InvalidConfig(_))));
    }

    #[test]
    fn drop_newest_counts_losses() {
        // Capacity-1 queue and a detector slow enough to guarantee overlap
        // is hard to arrange deterministically; instead flood far more
        // points than a tiny queue admits while the worker is busy warming
        // up, and accept either outcome per point — the invariant checked
        // is accepted + dropped == submitted and processed == accepted.
        let config = ServeConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::DropNewest);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let outcome = engine.submit_batch((0..5_000).map(wave)).unwrap();
        assert_eq!(outcome.submitted(), 5_000);
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, outcome.accepted);
        assert_eq!(report.stats.total_dropped, outcome.dropped);
        assert_eq!(report.scores.len() as u64, outcome.accepted);
    }

    #[test]
    fn shed_oldest_keeps_freshest_points_with_exact_accounting() {
        let config = ServeConfig::new(1)
            .with_queue_capacity(2)
            .with_backpressure(BackpressurePolicy::ShedOldest);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let outcome = engine.submit_batch((0..5_000).map(wave)).unwrap();
        // Every submission is admitted under ShedOldest …
        assert_eq!(outcome.accepted, 5_000);
        assert_eq!(outcome.dropped + outcome.rejected + outcome.shed, 0);
        let report = engine.finish().unwrap();
        // … but previously queued points may have been evicted; exact
        // conservation still holds.
        assert_eq!(
            report.stats.total_processed + report.stats.total_shed,
            5_000
        );
        assert_eq!(report.scores.len() as u64, report.stats.total_processed);
        // The *last* submissions always survive eviction: the final point
        // can only have been scored, never shed.
        if report.stats.total_shed > 0 {
            let last_seq = report.scores.last().unwrap().0;
            assert_eq!(last_seq, 4_999, "newest point must not be shed");
        }
    }

    #[test]
    fn read_only_mode_sheds_updates_but_serves_reads() {
        let config = ServeConfig::new(1).with_snapshot_every(16);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        engine.submit_batch((0..64).map(wave)).unwrap();
        // Wait for a snapshot so the read path has a model to serve.
        let scorer = engine.scorer(0, ScoreKind::ProjectionDistance);
        while scorer.generation() == 0 {
            std::thread::yield_now();
        }
        engine.set_read_only(true);
        assert!(engine.is_read_only());
        for i in 64..96 {
            assert_eq!(engine.submit(wave(i)).unwrap(), SubmitOutcome::Shed);
        }
        // Stale-snapshot reads keep working while updates shed.
        assert!(scorer.score(&wave(1_000)).unwrap().is_finite());
        engine.set_read_only(false);
        engine.submit_batch((96..128).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_shed, 32);
        assert_eq!(report.stats.total_processed, 96);
        assert_eq!(
            report.stats.total_processed + report.stats.total_shed,
            engine_submitted(&report),
        );
    }

    /// Back out the submission count from a report's conservation identity.
    fn engine_submitted(report: &PipelineReport) -> u64 {
        report.stats.total_processed
            + report.stats.total_dropped
            + report.stats.total_rejected
            + report.stats.total_shed
            + report.stats.total_crash_lost
    }

    #[test]
    fn finish_on_empty_engine_is_clean() {
        let engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 0);
        assert!(report.scores.is_empty());
        assert_eq!(report.stats.latency_p50_us, 0.0);
        assert_eq!(report.stats.stats_version, crate::stats::STATS_VERSION);
    }

    #[test]
    fn instrumented_pipeline_reports_refresh_and_snapshot_events() {
        let config = ServeConfig::new(2).with_snapshot_every(16);
        let mut engine = ServeEngine::start_instrumented(config, |_shard, recorder| {
            Box::new(
                DetectorConfig::new(2, 8)
                    .with_warmup(16)
                    .with_seed(7)
                    .build_fd(4)
                    .with_recorder(recorder),
            )
        })
        .unwrap();
        engine.submit_batch((0..200).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 200);

        let obs = report.stats.obs.expect("instrumented engine attaches obs");
        // Detector spans from both shards, merged.
        assert_eq!(obs.span("sketch_update").unwrap().count, 200);
        assert!(obs.span("score").unwrap().count > 0);
        assert!(obs.span("model_refresh").unwrap().count > 0);
        // Refresh events from the detectors, snapshot events from the shards
        // (one per snapshot_every batch plus the final drain publish).
        assert!(obs.event_count("refresh_fired") > 0, "no refresh events");
        let snapshots = obs.event_count("snapshot_published");
        assert!(snapshots >= 2, "snapshot events: {snapshots}");
        assert_eq!(obs.counter("snapshots_published") as usize, snapshots);
        assert_eq!(
            obs.span("snapshot_publish").unwrap().count as usize,
            snapshots
        );
        // Queue depth was sampled for every drained job, and the ring's own
        // occupancy gauge alongside it (the default channel is the ring).
        assert_eq!(obs.gauge("queue_depth").unwrap().samples, 200);
        assert_eq!(obs.gauge("ring_depth").unwrap().samples, 200);
    }

    #[test]
    fn rejected_rows_show_up_as_obs_events() {
        let config = ServeConfig::new(1);
        let mut engine = ServeEngine::start_instrumented(config, |_shard, recorder| {
            Box::new(
                DetectorConfig::new(2, 8)
                    .with_warmup(16)
                    .with_seed(7)
                    .build_fd(4)
                    .with_recorder(recorder),
            )
        })
        .unwrap();
        engine.submit(wave(0)).unwrap();
        engine.submit(vec![0.0, f64::NAN, 0.0, 0.0]).unwrap();
        engine.submit(vec![1.0]).unwrap();
        let report = engine.finish().unwrap();
        let obs = report.stats.obs.unwrap();
        assert_eq!(obs.counter("points_rejected"), 2);
        assert_eq!(obs.event_count("point_rejected"), 2);
        assert_eq!(report.stats.total_rejected, 2);
    }

    #[test]
    fn uninstrumented_engine_attaches_no_obs() {
        let mut engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        engine.submit_batch((0..20).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert!(report.stats.obs.is_none());
    }

    #[test]
    fn instrumentation_does_not_change_scores() {
        let run = |instrumented: bool| -> Vec<u64> {
            let config = ServeConfig::new(2).with_snapshot_every(8);
            let mut engine = if instrumented {
                ServeEngine::start_instrumented(config, |_shard, recorder| {
                    Box::new(
                        DetectorConfig::new(2, 8)
                            .with_warmup(16)
                            .with_seed(7)
                            .build_fd(4)
                            .with_recorder(recorder),
                    )
                })
                .unwrap()
            } else {
                ServeEngine::start(config, fd_factory).unwrap()
            };
            engine.submit_batch((0..120).map(wave)).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        assert_eq!(run(false), run(true), "instrumented scores diverged");
    }

    #[test]
    fn drop_newest_losses_show_up_as_obs_events() {
        let config = ServeConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::DropNewest);
        let mut engine = ServeEngine::start_instrumented(config, |_shard, recorder| {
            Box::new(
                DetectorConfig::new(2, 8)
                    .with_warmup(16)
                    .with_seed(7)
                    .build_fd(4)
                    .with_recorder(recorder),
            )
        })
        .unwrap();
        let outcome = engine.submit_batch((0..5_000).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        let obs = report.stats.obs.unwrap();
        assert_eq!(obs.counter("queue_dropped"), outcome.dropped);
        // The bounded event log kept (a suffix of) the drop events.
        if outcome.dropped > 0 {
            assert!(obs.event_count("queue_dropped") > 0);
        }
    }

    #[test]
    fn micro_batching_does_not_change_scores() {
        // The worker's micro-batch path must be bitwise identical to strict
        // per-point processing, whatever batch sizes the queue happens to
        // yield.
        let run = |max_batch: usize| -> Vec<u64> {
            let config = ServeConfig::new(2)
                .with_snapshot_every(8)
                .with_max_batch(max_batch);
            let mut engine = ServeEngine::start(config, fd_factory).unwrap();
            engine.submit_batch((0..300).map(wave)).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        let strict = run(1);
        assert_eq!(strict.len(), 300);
        assert_eq!(strict, run(64), "max_batch=64 diverged");
        assert_eq!(strict, run(7), "max_batch=7 diverged");
    }

    #[test]
    fn batch_submit_rows_matches_per_point_bitwise() {
        // The staged batch path must route every row to the same shard with
        // the same sequence number as per-point submission, so the scores
        // are bitwise identical — batching is an ingest optimisation, never
        // a semantic change.
        let rows: Vec<Vec<f64>> = (0..240).map(wave).collect();
        let run = |batched: bool| -> Vec<u64> {
            let config = ServeConfig::new(3).with_snapshot_every(8);
            let mut engine = ServeEngine::start(config, fd_factory).unwrap();
            if batched {
                let outcome = engine.submit_batch_rows(&rows).unwrap();
                assert_eq!(outcome.accepted, 240);
            } else {
                for row in &rows {
                    engine.submit(row.clone()).unwrap();
                }
            }
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        assert_eq!(run(true), run(false), "batch path diverged");
    }

    #[test]
    fn legacy_ingest_matches_ring_scores() {
        // The condvar queue and the SPSC ring are interchangeable carriers:
        // same jobs, same order, same scores.
        let rows: Vec<Vec<f64>> = (0..240).map(wave).collect();
        let run = |legacy: bool| -> Vec<u64> {
            let config = ServeConfig::new(2)
                .with_snapshot_every(8)
                .with_legacy_ingest(legacy);
            let mut engine = ServeEngine::start(config, fd_factory).unwrap();
            engine.submit_batch_rows(&rows).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        assert_eq!(run(false), run(true), "legacy queue scores diverged");
    }

    #[test]
    fn async_refresh_is_deterministic_across_batch_sizes() {
        // Off-thread refresh adopts results only at exact refresh_every
        // boundaries, so scores must not depend on micro-batch sizing or on
        // how long the refresher thread takes.
        let run = |max_batch: usize| -> Vec<u64> {
            let config = ServeConfig::new(2)
                .with_snapshot_every(8)
                .with_async_refresh(32)
                .with_max_batch(max_batch);
            let mut engine = ServeEngine::start(config, fd_factory).unwrap();
            engine.submit_batch((0..300).map(wave)).unwrap();
            let report = engine.finish().unwrap();
            report
                .scores_in_order()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        };
        let strict = run(1);
        assert_eq!(strict.len(), 300);
        assert_eq!(strict, run(7), "async refresh with max_batch=7 diverged");
        assert_eq!(strict, run(64), "async refresh with max_batch=64 diverged");
    }

    #[test]
    fn batch_submit_conserves_under_drop_newest() {
        let rows: Vec<Vec<f64>> = (0..5_000).map(wave).collect();
        let config = ServeConfig::new(1)
            .with_queue_capacity(1)
            .with_backpressure(BackpressurePolicy::DropNewest);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let outcome = engine.submit_batch_rows(&rows).unwrap();
        assert_eq!(outcome.submitted(), 5_000);
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, outcome.accepted);
        assert_eq!(report.stats.total_dropped, outcome.dropped);
        assert_eq!(report.scores.len() as u64, outcome.accepted);
        assert_eq!(engine_submitted(&report), 5_000);
    }

    #[test]
    fn batch_submit_conserves_under_shed_oldest() {
        let rows: Vec<Vec<f64>> = (0..5_000).map(wave).collect();
        let config = ServeConfig::new(1)
            .with_queue_capacity(2)
            .with_backpressure(BackpressurePolicy::ShedOldest);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let outcome = engine.submit_batch_rows(&rows).unwrap();
        // ShedOldest admits everything; losses surface as evictions.
        assert_eq!(outcome.accepted, 5_000);
        assert_eq!(outcome.dropped + outcome.rejected + outcome.shed, 0);
        let report = engine.finish().unwrap();
        assert_eq!(
            report.stats.total_processed + report.stats.total_shed,
            5_000
        );
        assert_eq!(report.scores.len() as u64, report.stats.total_processed);
    }

    #[test]
    fn batch_submit_rejects_poison_rows_in_place() {
        let mut rows: Vec<Vec<f64>> = (0..40).map(wave).collect();
        rows[7] = vec![1.0, f64::NAN, 0.0, 0.0];
        rows[23] = vec![0.5; 3];
        let mut engine = ServeEngine::start(ServeConfig::new(2), fd_factory).unwrap();
        let outcome = engine.submit_batch_rows(&rows).unwrap();
        assert_eq!(outcome.accepted, 38);
        assert_eq!(outcome.rejected, 2);
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_rejected, 2);
        assert_eq!(report.quarantine.total(), 2);
        let seqs: Vec<u64> = report.quarantine.rows().map(|r| r.seq).collect();
        assert!(seqs.contains(&7) && seqs.contains(&23));
        assert_eq!(engine_submitted(&report), 40);
    }

    #[test]
    fn snapshot_appears_after_enough_points() {
        let config = ServeConfig::new(1).with_snapshot_every(8);
        let mut engine = ServeEngine::start(config, fd_factory).unwrap();
        let scorer = engine.scorer(0, ScoreKind::ProjectionDistance);
        engine.submit_batch((0..64).map(wave)).unwrap();
        let report = engine.finish().unwrap();
        assert_eq!(report.stats.total_processed, 64);
        // After drain the final model is published.
        let model = scorer.model().expect("snapshot after warmup + drain");
        assert!(model.k() >= 1);
        assert!(scorer.score(&wave(1000)).unwrap().is_finite());
        assert!(scorer.generation() >= 1);
    }
}
