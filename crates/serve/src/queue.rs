//! The bounded job queue between the submit path and a shard worker.
//!
//! `std::sync::mpsc` almost fits, but two fault-tolerance requirements rule
//! it out: `ShedOldest` must evict the *oldest queued* job from the sender
//! side, and jobs already queued must survive a worker panic so the
//! restarted worker can take over the backlog (an mpsc `Receiver` dies with
//! the thread that owns it). This is the classic bounded buffer instead —
//! one mutex, two condvars — with explicit lifecycle flags:
//!
//! * `closed` — set by the engine at shutdown; the worker drains what is
//!   queued and then sees `None` from [`JobQueue::pop_block`].
//! * `dead` — set by the worker thread's [`DeathWatch`] guard if the
//!   supervisor itself dies (it should never: every detector panic is
//!   caught and handled). A dead queue refuses pushes instead of letting a
//!   producer block forever on a queue nobody will ever drain.

use crate::shard::Job;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push did not enqueue. The job is handed back so `DropNewest` can
/// count it and error paths can report its sequence number.
#[derive(Debug)]
pub(crate) enum PushError {
    /// The queue is at capacity (non-blocking pushes only).
    Full(Job),
    /// The worker died without closing the queue, or the queue was closed;
    /// enqueuing would be a silent loss or an eternal block. The job rides
    /// along for symmetry with `Full`; the engine's dead-shard path reports
    /// the shard error instead of retrying the job.
    Dead(#[allow(dead_code)] Job),
}

#[derive(Debug)]
struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
    dead: bool,
}

/// Bounded MPSC job queue with sender-side eviction; see the module docs.
#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl JobQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                dead: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // The queue's own critical sections cannot panic, so poisoning can
        // only be inherited noise; proceed with the data either way.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks while the queue is full (`Block` backpressure). Fails only on
    /// a dead or closed queue.
    pub(crate) fn push_block(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.lock();
        loop {
            if inner.dead || inner.closed {
                return Err(PushError::Dead(job));
            }
            if inner.jobs.len() < self.capacity {
                break;
            }
            inner = self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push (`DropNewest` backpressure, and the full-queue
    /// probe the observing `Block` path uses to record blocked submissions).
    pub(crate) fn try_push(&self, job: Job) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.dead || inner.closed {
            return Err(PushError::Dead(job));
        }
        if inner.jobs.len() >= self.capacity {
            return Err(PushError::Full(job));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Always-admitting push (`ShedOldest` backpressure): when full, the
    /// oldest queued job is evicted and returned so the caller can account
    /// for it.
    pub(crate) fn push_shed_oldest(&self, job: Job) -> Result<Option<Job>, PushError> {
        let mut inner = self.lock();
        if inner.dead || inner.closed {
            return Err(PushError::Dead(job));
        }
        let evicted = if inner.jobs.len() >= self.capacity {
            inner.jobs.pop_front()
        } else {
            None
        };
        inner.jobs.push_back(job);
        drop(inner);
        self.not_empty.notify_one();
        Ok(evicted)
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained (the graceful-shutdown signal).
    pub(crate) fn pop_block(&self) -> Option<Job> {
        let mut inner = self.lock();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking pop; production drains go through
    /// [`pop_batch`](Self::pop_batch) instead.
    #[cfg(test)]
    pub(crate) fn try_pop(&self) -> Option<Job> {
        let mut inner = self.lock();
        let job = inner.jobs.pop_front();
        drop(inner);
        if job.is_some() {
            self.not_full.notify_one();
        }
        job
    }

    /// Current queue length.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Non-blocking pop of up to `max` jobs under one lock acquisition,
    /// appended to `out`; the queue-channel counterpart of the ring's batch
    /// pop.
    pub(crate) fn pop_batch(&self, out: &mut Vec<Job>, max: usize) -> usize {
        let mut inner = self.lock();
        let n = max.min(inner.jobs.len());
        out.extend(inner.jobs.drain(..n));
        drop(inner);
        if n > 0 {
            self.not_full.notify_one();
        }
        n
    }

    /// Shutdown signal: the worker drains the backlog, then exits.
    pub(crate) fn close(&self) {
        let mut inner = self.lock();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Declares the consumer gone for good; blocked and future pushes fail
    /// instead of waiting on a drain that will never come.
    pub(crate) fn mark_dead(&self) {
        let mut inner = self.lock();
        inner.dead = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    fn job(seq: u64) -> Job {
        Job {
            seq,
            point: vec![seq as f64],
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn fifo_order_and_close_drain() {
        let q = JobQueue::new(4);
        for s in 0..3 {
            q.push_block(job(s)).ok().unwrap();
        }
        q.close();
        assert_eq!(q.pop_block().unwrap().seq, 0);
        assert_eq!(q.pop_block().unwrap().seq, 1);
        assert_eq!(q.pop_block().unwrap().seq, 2);
        assert!(q.pop_block().is_none(), "closed and drained");
    }

    #[test]
    fn try_push_full_hands_job_back() {
        let q = JobQueue::new(1);
        q.try_push(job(0)).ok().unwrap();
        match q.try_push(job(1)) {
            Err(PushError::Full(j)) => assert_eq!(j.seq, 1),
            _ => panic!("expected Full"),
        }
    }

    #[test]
    fn shed_oldest_evicts_front() {
        let q = JobQueue::new(2);
        assert!(q.push_shed_oldest(job(0)).unwrap().is_none());
        assert!(q.push_shed_oldest(job(1)).unwrap().is_none());
        let evicted = q.push_shed_oldest(job(2)).unwrap().unwrap();
        assert_eq!(evicted.seq, 0, "oldest job is the one shed");
        assert_eq!(q.len(), 2);
        assert_eq!(q.try_pop().unwrap().seq, 1);
        assert_eq!(q.try_pop().unwrap().seq, 2);
    }

    #[test]
    fn dead_queue_refuses_pushes_and_wakes_blocked_producer() {
        let q = Arc::new(JobQueue::new(1));
        q.push_block(job(0)).ok().unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_block(job(1)).is_err());
        // Give the producer a moment to block on the full queue, then kill
        // the (never-started) consumer side.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.mark_dead();
        assert!(producer.join().unwrap(), "blocked push must fail, not hang");
        assert!(matches!(q.try_push(job(2)), Err(PushError::Dead(_))));
    }

    #[test]
    fn queued_jobs_survive_for_a_new_consumer() {
        // The restart story: jobs enqueued before a worker panic are still
        // there for whoever picks the queue back up.
        let q = JobQueue::new(8);
        q.push_block(job(7)).ok().unwrap();
        q.push_block(job(8)).ok().unwrap();
        // (No consumer existed yet; a restarted one simply pops.)
        assert_eq!(q.pop_block().unwrap().seq, 7);
        assert_eq!(q.pop_block().unwrap().seq, 8);
    }
}
