//! End-to-end serving pipeline demo: shard a synthetic low-rank stream
//! across 4 workers while a reader thread scores probes against the
//! snapshot models, then print the pipeline stats as JSON.
//!
//! Run with: `cargo run -p sketchad-serve --example pipeline`

use sketchad_core::{DetectorConfig, ScoreKind, StreamingDetector};
use sketchad_serve::{ServeConfig, ServeEngine};
use sketchad_streams::{generate_low_rank_stream, AnomalyKind, LowRankStreamConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let stream = generate_low_rank_stream(LowRankStreamConfig {
        n: 20_000,
        d: 48,
        k: 4,
        anomaly_rate: 0.01,
        seed: 42,
        anomaly_kind: AnomalyKind::OffSubspace,
        ..Default::default()
    });

    let config = ServeConfig::new(4)
        .with_queue_capacity(512)
        .with_snapshot_every(200);
    let mut engine = ServeEngine::start(config, |_shard| {
        Box::new(
            DetectorConfig::new(4, 32)
                .with_warmup(200)
                .with_seed(7)
                .build_fd(48),
        ) as Box<dyn StreamingDetector + Send>
    })
    .expect("engine start");

    // Reader thread: scores a fixed probe against shard 0's snapshots while
    // the writers are still updating — the read path never blocks on them.
    let scorer = engine.scorer(0, ScoreKind::ProjectionDistance);
    let stop = Arc::new(AtomicBool::new(false));
    let reader_stop = Arc::clone(&stop);
    let probe: Vec<f64> = (0..48).map(|i| if i == 7 { 5.0 } else { 0.0 }).collect();
    let reader = std::thread::spawn(move || {
        let mut reads = 0u64;
        let mut last = None;
        while !reader_stop.load(Ordering::Relaxed) {
            if let Some(score) = scorer.score(&probe) {
                last = Some((score, scorer.generation()));
            }
            reads += 1;
            std::thread::yield_now();
        }
        (reads, last)
    });

    let batch = engine
        .submit_batch(stream.points.iter().map(|p| p.values.clone()))
        .expect("submit");
    let report = engine.finish().expect("clean drain");
    stop.store(true, Ordering::Relaxed);
    let (reads, last_read) = reader.join().expect("reader thread");

    println!(
        "submitted {} points ({} accepted, {} dropped) across {} shards",
        batch.accepted + batch.dropped,
        batch.accepted,
        batch.dropped,
        report.stats.shards.len()
    );
    if let Some((score, generation)) = last_read {
        println!(
            "snapshot reader: {reads} reads concurrent with the writers; \
             final probe score {score:.4} against model generation {generation}"
        );
    }
    println!(
        "latency p50 {:.1} µs / p99 {:.1} µs",
        report.stats.latency_p50_us, report.stats.latency_p99_us
    );
    println!(
        "stats JSON:\n{}",
        serde_json::to_string_pretty(&report.stats).expect("stats serialize")
    );
}
