//! Crash-recovery integration tests for the durable state tier wired into
//! the serving engine: kill a persistent pipeline mid-stream (including a
//! torn final WAL record and a destroyed newest snapshot), reopen it with
//! [`ServeEngine::open_or_recover`], and demand bitwise score parity with a
//! pipeline that never crashed — plus deterministic double recovery from
//! the same damaged directory.

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_durable::{self as durable, snapshot, wal};
use sketchad_serve::{FsyncPolicy, ServeConfig, ServeEngine};
use std::fs;
use std::path::{Path, PathBuf};

const DIM: usize = 6;
const TOTAL: u64 = 200;
const CRASH_AT: u64 = 120;

fn factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    Box::new(
        DetectorConfig::new(3, 8)
            .with_warmup(6)
            .with_seed(42)
            .build_fd(DIM),
    )
}

/// Deterministic pseudo-random stream (xorshift64*; no RNG dependency).
fn row(i: u64) -> Vec<f64> {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..DIM)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skad-serve-rec-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).expect("mkdir");
    for entry in fs::read_dir(src).expect("read_dir") {
        let entry = entry.expect("entry");
        let to = dst.join(entry.file_name());
        if entry.file_type().expect("ftype").is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            fs::copy(entry.path(), &to).expect("copy");
        }
    }
}

fn persistent_config(state_dir: &Path) -> ServeConfig {
    // max_batch 1 keeps checkpoint sequence numbers deterministic (the
    // batched path checkpoints at batch boundaries, which depend on queue
    // timing); scores are bitwise identical either way.
    ServeConfig::new(1)
        .with_state_dir(state_dir)
        .with_checkpoint_every(50)
        .with_fsync(FsyncPolicy::Always)
        .with_max_batch(1)
}

/// Scores rows `[0, TOTAL)` through an engine with no persistence at all —
/// the ground truth a recovered pipeline must match bitwise.
fn control_scores() -> Vec<f64> {
    let mut engine =
        ServeEngine::start(ServeConfig::new(1).with_max_batch(8), factory).expect("control start");
    engine.submit_batch((0..TOTAL).map(row)).expect("submit");
    engine.finish().expect("drain").scores_in_order()
}

/// Runs the persistent pipeline up to `CRASH_AT` rows, then vandalises the
/// on-disk state the way a crash would: the newest snapshot is destroyed
/// (forcing fall-back to the previous generation + WAL replay) and a torn
/// half-record is appended to the active WAL segment.
fn run_then_crash(state_dir: &Path) -> Vec<f64> {
    let mut engine =
        ServeEngine::open_or_recover(persistent_config(state_dir), factory).expect("start");
    engine.submit_batch((0..CRASH_AT).map(row)).expect("submit");
    let scores = engine.finish().expect("drain").scores_in_order();

    let shard = durable::shard_dir(state_dir, 0);
    // Destroy the shutdown checkpoint: recovery must fall back a generation.
    let snaps = snapshot::list_snapshots(&shard).expect("list snapshots");
    assert!(
        snaps.len() >= 2,
        "need >= 2 snapshot generations to exercise fall-back, got {}",
        snaps.len()
    );
    fs::remove_file(&snaps.last().expect("newest").1).expect("remove newest snapshot");
    // Tear the WAL tail: append half of a record to the newest segment.
    let segs = wal::list_segments(&shard).expect("list segments");
    let newest = &segs.last().expect("active segment").1;
    let frame = wal::encode_wal_record(&durable::WalRecord {
        seq: u64::MAX,
        row: row(0),
    });
    let mut bytes = fs::read(newest).expect("read segment");
    bytes.extend_from_slice(&frame[..frame.len() / 2]);
    fs::write(newest, bytes).expect("tear tail");
    scores
}

#[test]
fn kill_mid_stream_then_recover_matches_uncrashed_control() {
    let control = control_scores();
    let state_dir = temp_dir("parity");

    let pre_crash = run_then_crash(&state_dir);
    assert_eq!(pre_crash.len() as u64, CRASH_AT);
    for (i, (got, want)) in pre_crash.iter().zip(&control).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "pre-crash score {i} diverged"
        );
    }

    // Warm restart from the damaged directory and stream the remainder.
    let mut engine =
        ServeEngine::open_or_recover(persistent_config(&state_dir), factory).expect("recover");
    let outcome = engine
        .submit_batch((CRASH_AT..TOTAL).map(row))
        .expect("submit tail");
    let report = engine.finish().expect("drain");

    // Recovery surfaced through stats: the fallen-back snapshot held the
    // first 100 rows (checkpoints at 50 and 100; the destroyed shutdown
    // checkpoint held 120), so 20 rows came back via WAL replay.
    assert_eq!(report.stats.total_replayed, CRASH_AT - 100);
    assert_eq!(report.stats.recovered_shards, vec![0]);
    assert_eq!(report.stats.shards[0].replayed, CRASH_AT - 100);
    assert!(report.stats.shards[0].recovered_generation > 0);

    // Per-run conservation: every post-restart submission is accounted for
    // (replayed rows are deliberately *not* part of this identity — they
    // belong to the crashed run's ledger, not this one's).
    let s = &report.stats;
    assert_eq!(outcome.submitted(), TOTAL - CRASH_AT);
    assert_eq!(
        s.total_processed + s.total_dropped + s.total_rejected + s.total_shed + s.total_crash_lost,
        outcome.submitted()
    );

    // The tentpole guarantee: post-recovery scores are bitwise identical to
    // the pipeline that never went down.
    let tail = report.scores_in_order();
    assert_eq!(tail.len() as u64, TOTAL - CRASH_AT);
    for (i, (got, want)) in tail.iter().zip(&control[CRASH_AT as usize..]).enumerate() {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "post-recovery score {i} diverged from the uncrashed control"
        );
    }
    let _ = fs::remove_dir_all(&state_dir);
}

/// Recovering twice from the same damaged directory must be bitwise
/// deterministic: same replay, same recovered generation, same scores for
/// the same suffix.
#[test]
fn double_recovery_from_same_damage_is_bitwise_identical() {
    let state_dir = temp_dir("twice");
    let _ = run_then_crash(&state_dir);

    let copy_a = temp_dir("twice-a");
    let copy_b = temp_dir("twice-b");
    copy_dir(&state_dir, &copy_a);
    copy_dir(&state_dir, &copy_b);

    let run = |dir: &Path| {
        let mut engine =
            ServeEngine::open_or_recover(persistent_config(dir), factory).expect("recover");
        engine
            .submit_batch((CRASH_AT..TOTAL).map(row))
            .expect("submit");
        let report = engine.finish().expect("drain");
        (
            report.scores_in_order(),
            report.stats.total_replayed,
            report.stats.shards[0].recovered_generation,
        )
    };
    let (scores_a, replayed_a, gen_a) = run(&copy_a);
    let (scores_b, replayed_b, gen_b) = run(&copy_b);

    assert_eq!(replayed_a, replayed_b);
    assert_eq!(gen_a, gen_b);
    assert_eq!(scores_a.len(), scores_b.len());
    for (i, (a, b)) in scores_a.iter().zip(&scores_b).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "recovery {i} diverged");
    }
    for dir in [&state_dir, &copy_a, &copy_b] {
        let _ = fs::remove_dir_all(dir);
    }
}

/// Multi-shard recovery: each shard recovers its own directory, the
/// aggregate counters sum per-shard replay, and round-robin partitioning
/// keeps the recovered two-shard pipeline bitwise-aligned with an
/// uncrashed two-shard control (crash point chosen on a shard boundary).
#[test]
fn two_shard_recovery_aggregates_counters_and_preserves_scores() {
    const SHARDS: usize = 2;
    let config = |dir: Option<&Path>| {
        // max_batch 4 exercises the batched WAL-logging path; after a clean
        // shutdown the final checkpoint covers every row, so no assertion
        // here depends on where mid-run checkpoints landed.
        let base = ServeConfig::new(SHARDS)
            .with_checkpoint_every(20)
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_max_batch(4);
        match dir {
            Some(d) => base.with_state_dir(d),
            None => base,
        }
    };

    let mut control = ServeEngine::start(config(None), factory).expect("control");
    control.submit_batch((0..TOTAL).map(row)).expect("submit");
    let control_scores = control.finish().expect("drain").scores_in_order();

    let state_dir = temp_dir("two-shard");
    let mut first = ServeEngine::open_or_recover(config(Some(&state_dir)), factory).expect("start");
    // CRASH_AT is even, so both shards stop on a round-robin boundary and
    // the reopened engine's round-robin cursor realigns with the control.
    first.submit_batch((0..CRASH_AT).map(row)).expect("submit");
    drop(first.finish().expect("drain"));

    let mut second =
        ServeEngine::open_or_recover(config(Some(&state_dir)), factory).expect("recover");
    second
        .submit_batch((CRASH_AT..TOTAL).map(row))
        .expect("submit");
    let report = second.finish().expect("drain");

    let mut recovered = report.stats.recovered_shards.clone();
    recovered.sort_unstable();
    assert_eq!(recovered, vec![0, 1]);
    let per_shard: u64 = report.stats.shards.iter().map(|s| s.replayed).sum();
    assert_eq!(report.stats.total_replayed, per_shard);
    for shard in &report.stats.shards {
        assert!(
            shard.recovered_generation > 0,
            "clean shutdown checkpointed"
        );
    }

    let tail = report.scores_in_order();
    for (i, (got, want)) in tail
        .iter()
        .zip(&control_scores[CRASH_AT as usize..])
        .enumerate()
    {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "two-shard post-recovery score {i} diverged"
        );
    }
    let _ = fs::remove_dir_all(&state_dir);
}
