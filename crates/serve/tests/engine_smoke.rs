//! Concurrency smoke tests for the sharded serving engine: high-volume
//! zero-loss drain, concurrent snapshot readers, and panic containment
//! (worker restart from the last published snapshot; degradation once the
//! restart budget is spent).

use sketchad_core::{DetectorConfig, ScoreKind, StreamingDetector, SubspaceModel};
use sketchad_serve::{BackpressurePolicy, PartitionStrategy, ServeConfig, ServeEngine};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 16;

fn fd_factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    Box::new(
        DetectorConfig::new(3, 16)
            .with_warmup(64)
            .with_seed(11)
            .build_fd(DIM),
    )
}

fn wave(i: u64) -> Vec<f64> {
    let t = i as f64 * 0.017;
    (0..DIM)
        .map(|j| (t + j as f64 * 0.4).sin() * (1.0 + 0.1 * (j as f64)))
        .collect()
}

/// 100k points across 4 shards under blocking backpressure: every point is
/// scored exactly once, nothing is dropped, and shutdown drains cleanly.
#[test]
fn hundred_k_points_four_shards_zero_loss() {
    const N: u64 = 100_000;
    let config = ServeConfig::new(4)
        .with_queue_capacity(256)
        .with_backpressure(BackpressurePolicy::Block)
        .with_snapshot_every(1024);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");
    let outcome = engine.submit_batch((0..N).map(wave)).expect("submit");
    assert_eq!(outcome.accepted, N);
    assert_eq!(outcome.dropped, 0);

    let report = engine.finish().expect("drain");
    assert_eq!(report.stats.total_processed, N, "no point may be lost");
    assert_eq!(report.stats.total_dropped, 0);
    assert_eq!(report.scores.len() as u64, N);
    // Every sequence number exactly once, in order.
    for (expect, &(seq, score)) in report.scores.iter().enumerate() {
        assert_eq!(seq, expect as u64);
        assert!(score.is_finite());
    }
    // Work was actually spread: each of the 4 shards processed N/4.
    assert_eq!(report.stats.shards.len(), 4);
    for s in &report.stats.shards {
        assert_eq!(s.processed, N / 4);
        assert!(s.queue_high_water >= 1);
    }
    // Latency accounting saw every point.
    assert_eq!(report.stats.latency.count(), N);
    assert!(report.stats.latency_p99_us >= report.stats.latency_p50_us);
}

/// Snapshot readers run concurrently with the writers and always observe
/// either "no model yet" or a coherent published model — never a torn one —
/// and the generation counter only moves forward.
#[test]
fn concurrent_snapshot_readers_see_coherent_models() {
    let config = ServeConfig::new(2)
        .with_queue_capacity(128)
        .with_snapshot_every(64);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let scorer = engine.scorer(r % 2, ScoreKind::ProjectionDistance);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let probe = wave(999_983);
                let mut last_generation = 0u64;
                let mut scored = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let generation = scorer.generation();
                    assert!(generation >= last_generation, "generation went backwards");
                    last_generation = generation;
                    if let Some(model) = scorer.model() {
                        assert_eq!(model.dim(), DIM, "torn snapshot");
                        let s = scorer.score(&probe).expect("model present");
                        assert!(s.is_finite());
                        scored += 1;
                    }
                    std::thread::yield_now();
                }
                scored
            })
        })
        .collect();

    engine.submit_batch((0..20_000).map(wave)).expect("submit");
    let report = engine.finish().expect("drain");
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        handle.join().expect("reader must not panic");
    }
    assert_eq!(report.stats.total_processed, 20_000);
}

/// A detector that panics after a fixed number of points — the failure
/// injection for panic-containment tests.
struct FlakyDetector {
    inner: Box<dyn StreamingDetector + Send>,
    fail_after: u64,
}

impl StreamingDetector for FlakyDetector {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn process(&mut self, y: &[f64]) -> f64 {
        if self.inner.processed() >= self.fail_after {
            panic!("injected detector failure at point {}", self.fail_after);
        }
        self.inner.process(y)
    }
    fn processed(&self) -> u64 {
        self.inner.processed()
    }
    fn is_warmed_up(&self) -> bool {
        self.inner.is_warmed_up()
    }
    fn name(&self) -> String {
        format!("flaky({})", self.inner.name())
    }
    fn current_model(&self) -> Option<&SubspaceModel> {
        self.inner.current_model()
    }
}

/// A detector panic mid-stream is contained to its shard: the worker
/// restarts, re-adopts the last published snapshot (the panic struck after
/// warmup, so one exists), and the pipeline finishes cleanly with exact
/// loss accounting — no error, no hang, no silent loss.
#[test]
fn worker_panic_recovers_from_last_snapshot() {
    const N: u64 = 4_000;
    let builds = Arc::new(AtomicU64::new(0));
    let config = ServeConfig::new(1)
        .with_queue_capacity(64)
        .with_snapshot_every(16);
    let factory_builds = Arc::clone(&builds);
    let mut engine = ServeEngine::start(config, move |shard| {
        // The first build is flaky and dies at point 100 (after the warmup
        // of 64, so snapshots at 64, 80, 96 exist to resume from); every
        // rebuild is healthy.
        if factory_builds.fetch_add(1, Ordering::Relaxed) == 0 {
            Box::new(FlakyDetector {
                inner: fd_factory(shard),
                fail_after: 100,
            })
        } else {
            fd_factory(shard)
        }
    })
    .expect("start");

    let outcome = engine.submit_batch((0..N).map(wave)).expect("submit");
    assert_eq!(outcome.accepted, N, "blocking policy admits everything");
    let report = engine.finish().expect("a contained panic must not error");

    assert_eq!(builds.load(Ordering::Relaxed), 2, "factory rebuilt once");
    let shard = &report.stats.shards[0];
    assert_eq!(shard.restarts, 1);
    assert!(!shard.degraded);
    assert!(
        shard.crash_lost >= 1,
        "the in-flight point died in the panic"
    );
    // Conservation: every submission landed exactly one way.
    assert_eq!(
        report.stats.total_processed + report.stats.total_crash_lost,
        N,
        "scored + crash_lost must cover every accepted point"
    );
    assert_eq!(report.scores.len() as u64, report.stats.total_processed);
    for &(_, score) in &report.scores {
        assert!(score.is_finite());
    }
    // The rebuilt detector adopted the published snapshot instead of
    // re-warming: points scored after the restart carry real (non-zero)
    // scores, which a fresh 64-point warmup would have zeroed.
    let post_restart_nonzero = report
        .scores
        .iter()
        .filter(|&&(seq, score)| seq > 150 && score != 0.0)
        .count();
    assert!(
        post_restart_nonzero > 0,
        "restarted worker must resume scoring from the adopted model"
    );
}

/// A persistently panicking detector exhausts its restart budget and the
/// shard degrades: updates shed with exact counts, the other shard keeps
/// scoring, and `finish` still succeeds with the damage itemised.
#[test]
fn exhausted_restart_budget_degrades_shard_not_pipeline() {
    const N: u64 = 6_000;
    let config = ServeConfig::new(2)
        .with_queue_capacity(16)
        .with_backpressure(BackpressurePolicy::DropNewest)
        .with_max_restarts(1);
    let mut engine = ServeEngine::start(config, |shard| {
        if shard == 1 {
            // Every incarnation dies after 10 points: restart once, die
            // again, degrade.
            Box::new(FlakyDetector {
                inner: fd_factory(shard),
                fail_after: 10,
            })
        } else {
            fd_factory(shard)
        }
    })
    .expect("start");

    let outcome = engine.submit_batch((0..N).map(wave)).expect("submit");
    // The degrade flag is set by the worker thread; wait for it, then
    // verify post-degradation submissions to that shard shed at submit
    // time while the healthy shard still accepts.
    while !engine.is_degraded(1) {
        std::thread::yield_now();
    }
    let mut late = sketchad_serve::BatchOutcome::default();
    for i in N..N + 40 {
        match engine.submit(wave(i)).expect("submit stays infallible") {
            sketchad_serve::SubmitOutcome::Shed => late.shed += 1,
            sketchad_serve::SubmitOutcome::Accepted => late.accepted += 1,
            sketchad_serve::SubmitOutcome::Dropped => late.dropped += 1,
            sketchad_serve::SubmitOutcome::Rejected(_) => late.rejected += 1,
        }
    }
    assert_eq!(late.shed, 20, "every point routed to the degraded shard");
    assert_eq!(late.accepted + late.dropped, 20, "healthy shard unaffected");
    let report = engine
        .finish()
        .expect("degradation must not fail the pipeline");

    assert_eq!(report.stats.degraded_shards, vec![1]);
    let flaky = &report.stats.shards[1];
    assert_eq!(flaky.restarts, 2, "budget of 1 restart, then the fatal one");
    assert!(flaky.degraded);
    assert!(flaky.shed > 0, "a degraded shard sheds instead of scoring");
    // The healthy shard carried its half of the stream.
    let healthy = &report.stats.shards[0];
    assert!(healthy.processed > 0);
    assert!(!healthy.degraded);
    assert_eq!(healthy.restarts, 0);
    // Exact conservation across the whole pipeline, faults included.
    assert_eq!(
        report.stats.total_processed
            + report.stats.total_dropped
            + report.stats.total_rejected
            + report.stats.total_shed
            + report.stats.total_crash_lost,
        N + 40
    );
    assert_eq!(outcome.submitted(), N);
}

/// Key-hash partitioning keeps a key's points on one shard even at volume,
/// so per-key score sequences stay deterministic.
#[test]
fn key_hash_volume_run_is_sticky_and_lossless() {
    const N: u64 = 64_000;
    const KEYS: u64 = 64;
    let config = ServeConfig::new(4)
        .with_queue_capacity(256)
        .with_partition(PartitionStrategy::KeyHash);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");
    for i in 0..N {
        engine.submit_keyed(i % KEYS, wave(i)).expect("submit");
    }
    let report = engine.finish().expect("drain");
    assert_eq!(report.stats.total_processed, N);
    // Each key contributes exactly N/KEYS points to exactly one shard, so
    // every shard's total is a multiple of N/KEYS.
    let per_key = N / KEYS;
    for s in &report.stats.shards {
        assert_eq!(
            s.processed % per_key,
            0,
            "shard {} processed {} (not a multiple of {per_key})",
            s.shard,
            s.processed
        );
    }
}
