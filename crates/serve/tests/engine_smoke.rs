//! Concurrency smoke tests for the sharded serving engine: high-volume
//! zero-loss drain, concurrent snapshot readers, and panic containment.

use sketchad_core::{DetectorConfig, ScoreKind, StreamingDetector, SubspaceModel};
use sketchad_serve::{BackpressurePolicy, PartitionStrategy, ServeConfig, ServeEngine, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DIM: usize = 16;

fn fd_factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    Box::new(
        DetectorConfig::new(3, 16)
            .with_warmup(64)
            .with_seed(11)
            .build_fd(DIM),
    )
}

fn wave(i: u64) -> Vec<f64> {
    let t = i as f64 * 0.017;
    (0..DIM)
        .map(|j| (t + j as f64 * 0.4).sin() * (1.0 + 0.1 * (j as f64)))
        .collect()
}

/// 100k points across 4 shards under blocking backpressure: every point is
/// scored exactly once, nothing is dropped, and shutdown drains cleanly.
#[test]
fn hundred_k_points_four_shards_zero_loss() {
    const N: u64 = 100_000;
    let config = ServeConfig::new(4)
        .with_queue_capacity(256)
        .with_backpressure(BackpressurePolicy::Block)
        .with_snapshot_every(1024);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");
    let outcome = engine.submit_batch((0..N).map(wave)).expect("submit");
    assert_eq!(outcome.accepted, N);
    assert_eq!(outcome.dropped, 0);

    let report = engine.finish().expect("drain");
    assert_eq!(report.stats.total_processed, N, "no point may be lost");
    assert_eq!(report.stats.total_dropped, 0);
    assert_eq!(report.scores.len() as u64, N);
    // Every sequence number exactly once, in order.
    for (expect, &(seq, score)) in report.scores.iter().enumerate() {
        assert_eq!(seq, expect as u64);
        assert!(score.is_finite());
    }
    // Work was actually spread: each of the 4 shards processed N/4.
    assert_eq!(report.stats.shards.len(), 4);
    for s in &report.stats.shards {
        assert_eq!(s.processed, N / 4);
        assert!(s.queue_high_water >= 1);
    }
    // Latency accounting saw every point.
    assert_eq!(report.stats.latency.count(), N);
    assert!(report.stats.latency_p99_us >= report.stats.latency_p50_us);
}

/// Snapshot readers run concurrently with the writers and always observe
/// either "no model yet" or a coherent published model — never a torn one —
/// and the generation counter only moves forward.
#[test]
fn concurrent_snapshot_readers_see_coherent_models() {
    let config = ServeConfig::new(2)
        .with_queue_capacity(128)
        .with_snapshot_every(64);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let scorer = engine.scorer(r % 2, ScoreKind::ProjectionDistance);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let probe = wave(999_983);
                let mut last_generation = 0u64;
                let mut scored = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let generation = scorer.generation();
                    assert!(generation >= last_generation, "generation went backwards");
                    last_generation = generation;
                    if let Some(model) = scorer.model() {
                        assert_eq!(model.dim(), DIM, "torn snapshot");
                        let s = scorer.score(&probe).expect("model present");
                        assert!(s.is_finite());
                        scored += 1;
                    }
                    std::thread::yield_now();
                }
                scored
            })
        })
        .collect();

    engine.submit_batch((0..20_000).map(wave)).expect("submit");
    let report = engine.finish().expect("drain");
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        handle.join().expect("reader must not panic");
    }
    assert_eq!(report.stats.total_processed, 20_000);
}

/// A detector that panics after a fixed number of points — the failure
/// injection for panic-containment tests.
struct FlakyDetector {
    inner: Box<dyn StreamingDetector + Send>,
    fail_after: u64,
}

impl StreamingDetector for FlakyDetector {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn process(&mut self, y: &[f64]) -> f64 {
        if self.inner.processed() >= self.fail_after {
            panic!("injected detector failure at point {}", self.fail_after);
        }
        self.inner.process(y)
    }
    fn processed(&self) -> u64 {
        self.inner.processed()
    }
    fn is_warmed_up(&self) -> bool {
        self.inner.is_warmed_up()
    }
    fn name(&self) -> String {
        format!("flaky({})", self.inner.name())
    }
    fn current_model(&self) -> Option<&SubspaceModel> {
        self.inner.current_model()
    }
}

/// A worker panic mid-stream surfaces as `WorkerPanicked` — from submit or
/// from finish, never as a hang or a silent success.
#[test]
fn worker_panic_is_an_error_not_a_hang() {
    let config = ServeConfig::new(2).with_queue_capacity(8);
    let mut engine = ServeEngine::start(config, |shard| {
        let inner = fd_factory(shard);
        if shard == 1 {
            Box::new(FlakyDetector {
                inner,
                fail_after: 50,
            })
        } else {
            inner
        }
    })
    .expect("start");

    // Submit enough that shard 1 is guaranteed to hit its failure point;
    // under blocking backpressure the dead shard must turn into an error
    // rather than an eternal block on its full queue.
    let mut saw_submit_error = None;
    for i in 0..10_000u64 {
        match engine.submit(wave(i)) {
            Ok(_) => {}
            Err(e) => {
                saw_submit_error = Some(e);
                break;
            }
        }
    }
    let result = engine.finish();
    let err = match saw_submit_error {
        Some(e) => e,
        None => result.expect_err("panic must fail the pipeline"),
    };
    match err {
        ServeError::WorkerPanicked { shard, message } => {
            assert_eq!(shard, 1);
            assert!(
                message.contains("injected detector failure"),
                "panic payload must be preserved, got: {message}"
            );
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }
}

/// Same panic containment under `DropNewest`: the producer never blocks and
/// still learns about the dead shard.
#[test]
fn worker_panic_surfaces_under_drop_policy() {
    let config = ServeConfig::new(1)
        .with_queue_capacity(4)
        .with_backpressure(BackpressurePolicy::DropNewest);
    let mut engine = ServeEngine::start(config, |shard| {
        Box::new(FlakyDetector {
            inner: fd_factory(shard),
            fail_after: 10,
        }) as Box<dyn StreamingDetector + Send>
    })
    .expect("start");

    let mut submit_err = None;
    for i in 0..100_000u64 {
        match engine.submit(wave(i)) {
            Ok(_) => {}
            Err(e) => {
                submit_err = Some(e);
                break;
            }
        }
    }
    let err = match submit_err {
        Some(e) => e,
        None => engine.finish().expect_err("dead shard must fail finish"),
    };
    assert!(matches!(err, ServeError::WorkerPanicked { shard: 0, .. }));
}

/// Key-hash partitioning keeps a key's points on one shard even at volume,
/// so per-key score sequences stay deterministic.
#[test]
fn key_hash_volume_run_is_sticky_and_lossless() {
    const N: u64 = 64_000;
    const KEYS: u64 = 64;
    let config = ServeConfig::new(4)
        .with_queue_capacity(256)
        .with_partition(PartitionStrategy::KeyHash);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");
    for i in 0..N {
        engine.submit_keyed(i % KEYS, wave(i)).expect("submit");
    }
    let report = engine.finish().expect("drain");
    assert_eq!(report.stats.total_processed, N);
    // Each key contributes exactly N/KEYS points to exactly one shard, so
    // every shard's total is a multiple of N/KEYS.
    let per_key = N / KEYS;
    for s in &report.stats.shards {
        assert_eq!(
            s.processed % per_key,
            0,
            "shard {} processed {} (not a multiple of {per_key})",
            s.shard,
            s.processed
        );
    }
}
