//! Property-based determinism tests for the multi-producer submit path.
//!
//! The engine's contract (`ServeEngine::submit_batch_rows_parallel`): the
//! shard a point lands on is a pure function of its sequence number, and
//! each ring keeps exactly one producer lane, so the *scores* are bitwise
//! identical no matter how many producer lanes split the batch. These
//! properties pin that down across shard counts, batch shapes, and all
//! three backpressure policies — sized loss-free (queue capacity ≥ batch)
//! so even the lossy policies drop nothing and the full score sequence is
//! comparable bit for bit.

use proptest::prelude::*;
use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_serve::{BackpressurePolicy, ServeConfig, ServeEngine};

const DIM: usize = 8;

fn fd_factory(_shard: usize) -> Box<dyn StreamingDetector + Send> {
    Box::new(
        DetectorConfig::new(2, 8)
            .with_warmup(16)
            .with_seed(7)
            .build_fd(DIM),
    )
}

/// Deterministic pseudo-random rows: an LCG-driven wave per dimension.
fn rows(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|i| {
            (0..DIM)
                .map(|j| {
                    state = state
                        .wrapping_mul(6_364_136_223_846_793_005)
                        .wrapping_add(1_442_695_040_888_963_407);
                    let noise = (state >> 11) as f64 / (1u64 << 53) as f64;
                    (i as f64 * 0.013 + j as f64 * 0.7).sin() + noise * 0.01
                })
                .collect()
        })
        .collect()
}

/// One full pipeline run: start → parallel submit → drained scores.
fn run(
    shards: usize,
    capacity: usize,
    policy: BackpressurePolicy,
    data: &[Vec<f64>],
    producers: usize,
) -> Vec<u64> {
    let config = ServeConfig::new(shards)
        .with_queue_capacity(capacity)
        .with_backpressure(policy)
        .with_snapshot_every(64);
    let mut engine = ServeEngine::start(config, fd_factory).expect("start");
    let outcome = engine
        .submit_batch_rows_parallel(data, producers)
        .expect("submit");
    assert_eq!(outcome.accepted, data.len() as u64, "sized loss-free");
    assert_eq!(outcome.dropped + outcome.shed, 0, "sized loss-free");
    let report = engine.finish().expect("drain");
    report
        .scores_in_order()
        .iter()
        .map(|s| s.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Scores are bitwise-equal across producer counts {1, 2, 4} for every
    /// backpressure policy when the run is loss-free.
    #[test]
    fn producer_count_never_changes_scores(
        shards in 1usize..6,
        n in 64usize..320,
        seed in 0u64..1000,
    ) {
        let data = rows(n, seed);
        // Capacity ≥ the whole batch: Block never blocks, DropNewest never
        // drops, ShedOldest never sheds — all three become comparable.
        let capacity = n;
        for policy in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropNewest,
            BackpressurePolicy::ShedOldest,
        ] {
            let reference = run(shards, capacity, policy, &data, 1);
            for producers in [2usize, 4] {
                let got = run(shards, capacity, policy, &data, producers);
                prop_assert_eq!(
                    &reference,
                    &got,
                    "policy {:?}: {} producers diverged from 1",
                    policy,
                    producers
                );
            }
        }
    }

    /// Producer counts beyond the shard count clamp down to it (a lane
    /// with no shards to own would be pure overhead) and still match.
    #[test]
    fn oversubscribed_producers_clamp_and_match(
        n in 64usize..200,
        seed in 0u64..1000,
    ) {
        let data = rows(n, seed);
        let reference = run(2, n, BackpressurePolicy::Block, &data, 1);
        let got = run(2, n, BackpressurePolicy::Block, &data, 16);
        prop_assert_eq!(&reference, &got);
    }
}
