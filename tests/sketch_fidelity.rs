//! Cross-crate fidelity checks: the deterministic sketch guarantee holds
//! end-to-end, and sketched anomaly scores track the exact detector.

use sketchad_core::{DetectorConfig, ExactSvdDetector, ScoreKind, StreamingDetector};
use sketchad_eval::spearman;
use sketchad_linalg::Matrix;
use sketchad_sketch::bounds::{covariance_error, fd_spectral_error_bound};
use sketchad_sketch::{FrequentDirections, MatrixSketch};
use sketchad_streams::{synth_lowrank, DatasetScale};

#[test]
fn fd_guarantee_holds_on_real_dataset_streams() {
    for stream in [
        synth_lowrank(DatasetScale::Small),
        sketchad_streams::p53_like(DatasetScale::Small),
    ] {
        let a = Matrix::from_rows(&stream.rows()).unwrap();
        for ell in [8usize, 24] {
            let mut fd = FrequentDirections::new(ell, stream.dim);
            for (v, _) in stream.iter() {
                fd.update(v);
            }
            let err = covariance_error(&a, &fd.sketch(), 7);
            let bound = fd_spectral_error_bound(a.squared_frobenius_norm(), ell);
            assert!(
                err.absolute <= bound * (1.0 + 1e-9),
                "{} ell={ell}: measured {} > bound {bound}",
                stream.name,
                err.absolute
            );
        }
    }
}

#[test]
fn sketched_scores_track_exact_scores() {
    let stream = synth_lowrank(DatasetScale::Small);
    let warmup = 150;
    let k = 5;

    let mut exact = ExactSvdDetector::new(stream.dim, k, ScoreKind::RelativeProjection, 64, warmup);
    let mut exact_scores = Vec::new();
    for (v, _) in stream.iter() {
        exact_scores.push(exact.process(v));
    }

    let cfg = DetectorConfig::new(k, 32).with_warmup(warmup);
    let mut fd = cfg.build_fd(stream.dim);
    let mut fd_scores = Vec::new();
    for (v, _) in stream.iter() {
        fd_scores.push(fd.process(v));
    }

    let corr = spearman(&fd_scores[warmup..], &exact_scores[warmup..]).unwrap();
    assert!(corr > 0.9, "FD/exact Spearman correlation {corr}");
}

#[test]
fn larger_sketches_are_more_faithful() {
    let stream = synth_lowrank(DatasetScale::Small);
    let warmup = 150;
    let k = 5;
    let mut exact = ExactSvdDetector::new(stream.dim, k, ScoreKind::RelativeProjection, 64, warmup);
    let mut exact_scores = Vec::new();
    for (v, _) in stream.iter() {
        exact_scores.push(exact.process(v));
    }

    let mut corrs = Vec::new();
    for ell in [6usize, 12, 32] {
        let cfg = DetectorConfig::new(k.min(ell), ell).with_warmup(warmup);
        let mut det = cfg.build_fd(stream.dim);
        let mut scores = Vec::new();
        for (v, _) in stream.iter() {
            scores.push(det.process(v));
        }
        corrs.push(spearman(&scores[warmup..], &exact_scores[warmup..]).unwrap());
    }
    assert!(
        corrs[2] >= corrs[0] - 0.02,
        "fidelity should not degrade with ell: {corrs:?}"
    );
    assert!(
        corrs[2] > 0.9,
        "largest sketch should be faithful: {corrs:?}"
    );
}

#[test]
fn detector_sketch_exposes_quality_introspection() {
    let stream = synth_lowrank(DatasetScale::Small);
    let cfg = DetectorConfig::new(5, 16).with_warmup(100);
    let mut det = cfg.build_fd(stream.dim);
    for (v, _) in stream.iter() {
        det.process(v);
    }
    // The sketch behind the detector is reachable and self-certifying.
    let certificate = det.sketch().shrink_delta_sum();
    let a = Matrix::from_rows(&stream.rows()).unwrap();
    let err = covariance_error(&a, &det.sketch().sketch(), 3);
    assert!(
        err.absolute <= certificate * (1.0 + 1e-6) + 1e-9,
        "certificate {certificate} < measured {}",
        err.absolute
    );
    // The model reports a sensible captured-energy figure.
    let model = det.model().expect("model built");
    let energy = model.energy_captured();
    assert!(energy > 0.5 && energy <= 1.0, "energy {energy}");
}
