//! Live-telemetry integration: the sampler and both exporters must be a
//! pure read — bitwise-invisible to every score — and must survive
//! overload (ShedOldest evictions) plus injected worker panics without
//! violating the conservation identity or deadlocking `finish()`.
//!
//! Live frames deliberately get no exact-conservation assertion: the
//! probe reads `submitted` and the per-shard counters non-atomically, so
//! a preempted sampler thread can observe arbitrary apparent lag. Only
//! the final frame — taken after the workers have joined — is exact.

use proptest::prelude::*;
use sketchad_core::{StreamingDetector, SubspaceModel};
use sketchad_obs::{TelemetryRecord, TELEMETRY_SCHEMA};
use sketchad_serve::{
    BackpressurePolicy, PipelineReport, ServeConfig, ServeEngine, SubmitOutcome, TelemetryConfig,
};
use sketchad_system_tests::{base_detector, clean_point, PanicOnce};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A unique temp path per test so parallel runs never collide.
fn tmp_jsonl(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sketchad-telemetry-test-{tag}-{}.jsonl",
        std::process::id()
    ))
}

/// Runs `n` points of the deterministic clean stream through a fresh
/// engine; `telemetry` additionally attaches a fast sampler with a flight
/// recorder at `flight` (exercising the full export path, not just the
/// in-memory store).
fn run_clean(
    seed: u64,
    shards: usize,
    max_batch: usize,
    n: u64,
    telemetry: Option<&PathBuf>,
) -> PipelineReport {
    let config = ServeConfig::new(shards)
        .with_snapshot_every(32)
        .with_max_batch(max_batch);
    let mut engine =
        ServeEngine::start(config, move |_shard| base_detector(seed)).expect("engine start");
    if let Some(flight) = telemetry {
        engine
            .start_telemetry(
                &TelemetryConfig::new()
                    .with_sample_every(Duration::from_millis(1))
                    .with_flight_recorder(flight),
            )
            .expect("start telemetry");
    }
    engine
        .submit_batch((0..n).map(|i| clean_point(seed, i)))
        .expect("submit");
    engine.finish().expect("drain")
}

/// Parses a flight recording, asserting the invariants `schema_check`
/// enforces (valid records, correct tag, strictly increasing steps), and
/// returns the frames.
fn parse_flight(path: &PathBuf) -> Vec<TelemetryRecord> {
    let raw = std::fs::read_to_string(path).expect("flight recording exists");
    let mut frames = Vec::new();
    let mut last_step = None;
    for (i, line) in raw.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let record: TelemetryRecord =
            serde_json::from_str(line).unwrap_or_else(|e| panic!("line {}: {e}", i + 1));
        assert_eq!(record.schema, TELEMETRY_SCHEMA, "line {}", i + 1);
        assert!(
            last_step.is_none_or(|prev| record.step > prev),
            "line {}: step {} did not advance",
            i + 1,
            record.step
        );
        last_step = Some(record.step);
        frames.push(record);
    }
    assert!(!frames.is_empty(), "flight recorder wrote no frames");
    frames
}

/// The tentpole invariant: attaching the sampler plus the flight recorder
/// changes no score bit. Same stream, same seeds, scores compared by bit
/// pattern — any hidden coupling between the telemetry thread and the
/// scoring path (a lock on the hot path, a reordered drain) fails this.
#[test]
fn sampler_and_exporters_leave_scores_bit_identical() {
    let flight = tmp_jsonl("invisible");
    let plain = run_clean(77, 2, 64, 1500, None);
    let sampled = run_clean(77, 2, 64, 1500, Some(&flight));
    let a = plain.scores_in_order();
    let b = sampled.scores_in_order();
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "score {i}: {x} vs {y}");
    }
    // The ride-along recording is itself well-formed and quiesced-exact.
    let frames = parse_flight(&flight);
    let last = frames.last().unwrap();
    assert_eq!(last.counters.get("submitted"), Some(&1500));
    assert_eq!(last.counters.get("processed"), Some(&1500));
    assert_eq!(last.gauges.get("conservation_lag"), Some(&0.0));
    assert_eq!(last.gauges.get("conservation_ok"), Some(&1.0));
    let _ = std::fs::remove_file(&flight);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Invisibility across the configuration lattice: shard counts,
    /// opportunistic-batch widths, and stream seeds. Eight cases keep the
    /// suite fast; each spins up two full engines plus a sampler.
    #[test]
    fn sampling_is_invisible_across_configs(
        seed in 0u64..1_000,
        shards in 1usize..=3,
        batch_pick in 0usize..3,
    ) {
        let max_batch = [1usize, 7, 64][batch_pick];
        let flight = tmp_jsonl(&format!("prop-{seed}-{shards}-{max_batch}"));
        let n = 400;
        let plain = run_clean(seed, shards, max_batch, n, None).scores_in_order();
        let sampled = run_clean(seed, shards, max_batch, n, Some(&flight)).scores_in_order();
        let _ = std::fs::remove_file(&flight);
        prop_assert_eq!(plain.len(), sampled.len());
        for (i, (x, y)) in plain.iter().zip(&sampled).enumerate() {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "score {}: {} vs {}", i, x, y);
        }
    }
}

/// Slows every point down so the submit loop outruns the workers and
/// `ShedOldest` actually evicts — an overload the test can rely on.
struct SlowDetector {
    inner: Box<dyn StreamingDetector + Send>,
    delay: Duration,
}

impl StreamingDetector for SlowDetector {
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn process(&mut self, y: &[f64]) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.process(y)
    }
    fn processed(&self) -> u64 {
        self.inner.processed()
    }
    fn is_warmed_up(&self) -> bool {
        self.inner.is_warmed_up()
    }
    fn name(&self) -> String {
        format!("slow({})", self.inner.name())
    }
    fn current_model(&self) -> Option<&SubspaceModel> {
        self.inner.current_model()
    }
    fn score_only(&self, y: &[f64]) -> Option<f64> {
        self.inner.score_only(y)
    }
    fn adopt_model(&mut self, model: &SubspaceModel) -> bool {
        self.inner.adopt_model(model)
    }
    // process_batch inherits the per-point default so the delay (and the
    // PanicOnce threshold wrapping this) applies to every point.
}

/// The stress leg: a saturated queue under `ShedOldest`, a detector that
/// panics mid-run (supervised restart), and a 1 ms sampler flight-recording
/// the whole thing. `finish()` must return (no deadlock), the conservation
/// identity must hold exactly at quiesce — in the stats and in the final
/// telemetry frame — and the recording must be schema-valid.
#[test]
fn shed_overload_and_crash_with_sampler_hold_conservation() {
    let seed = 99u64;
    let shards = 2usize;
    let flight = tmp_jsonl("stress");
    let fired = Arc::new(AtomicU64::new(0));
    let factory_fired = Arc::clone(&fired);

    let config = ServeConfig::new(shards)
        .with_queue_capacity(4)
        .with_backpressure(BackpressurePolicy::ShedOldest)
        .with_snapshot_every(16)
        .with_max_restarts(8)
        .with_max_batch(1);
    let mut engine = ServeEngine::start(config, move |shard| {
        let slow = Box::new(SlowDetector {
            inner: base_detector(seed),
            delay: Duration::from_micros(200),
        });
        if shard == 0 {
            // Shard 0 crashes once it has processed 30 points; the
            // supervisor restarts it and the stream keeps flowing.
            Box::new(PanicOnce::new(slow, 30, Arc::clone(&factory_fired)))
        } else {
            slow
        }
    })
    .expect("engine start");
    engine
        .start_telemetry(
            &TelemetryConfig::new()
                .with_sample_every(Duration::from_millis(1))
                .with_flight_recorder(&flight),
        )
        .expect("start telemetry");

    // Submit until both faults have demonstrably happened: at least one
    // point shed under overload and at least one injected panic. The
    // occasional yield lets the throttled workers reach the panic
    // threshold; the hard cap keeps a broken engine from looping forever.
    let mut shed_seen = false;
    let mut n = 0u64;
    for i in 0..1_000_000u64 {
        if matches!(
            engine.submit(clean_point(seed, i)).expect("submit"),
            SubmitOutcome::Shed
        ) {
            shed_seen = true;
        }
        n += 1;
        if n >= 2_000 && shed_seen && fired.load(Ordering::Relaxed) > 0 {
            break;
        }
        if i % 512 == 511 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // The load-bearing call: a deadlocked sampler or a worker wedged on a
    // poisoned lock would hang here forever.
    let report = engine.finish().expect("faulted run still finishes");

    let stats = &report.stats;
    assert_eq!(
        stats.total_processed
            + stats.total_dropped
            + stats.total_rejected
            + stats.total_shed
            + stats.total_crash_lost,
        n,
        "conservation identity at quiesce"
    );
    assert!(stats.total_shed > 0, "overload never triggered shedding");
    assert!(
        fired.load(Ordering::Relaxed) > 0,
        "injected panic never fired"
    );

    let frames = parse_flight(&flight);
    let last = frames.last().unwrap();
    assert_eq!(last.counters.get("submitted"), Some(&n));
    assert_eq!(
        last.counters.get("processed").unwrap()
            + last.counters.get("dropped").unwrap()
            + last.counters.get("rejected").unwrap()
            + last.counters.get("shed").unwrap()
            + last.counters.get("crash_lost").unwrap(),
        n,
        "conservation identity in the final telemetry frame"
    );
    assert_eq!(last.gauges.get("conservation_lag"), Some(&0.0));
    assert_eq!(last.gauges.get("conservation_ok"), Some(&1.0));
    assert!(
        *last.counters.get("restarts").unwrap() > 0,
        "final frame missed the supervised restart"
    );
    let _ = std::fs::remove_file(&flight);
}
