//! End-to-end pipeline tests: datasets → detectors → metrics.

use sketchad_core::{
    DetectorConfig, MeanDistanceDetector, NormalizedDetector, RandomScoreDetector,
    StreamingDetector, ThresholdedDetector,
};
use sketchad_eval::{average_precision, roc_auc};
use sketchad_streams::{standard_datasets, synth_lowrank, DatasetScale};

const WARMUP: usize = 150;

fn run(det: &mut dyn StreamingDetector, stream: &sketchad_streams::LabeledStream) -> Vec<f64> {
    let mut scores = Vec::with_capacity(stream.len());
    for (v, _) in stream.iter() {
        scores.push(det.process(v));
    }
    scores
}

fn auc_of(det: &mut dyn StreamingDetector, stream: &sketchad_streams::LabeledStream) -> f64 {
    let scores = run(det, stream);
    let labels = stream.labels();
    roc_auc(&scores[WARMUP..], &labels[WARMUP..]).expect("both classes present")
}

/// Model rank appropriate for each dataset substitute (matching its
/// generator's latent structure: rank-10 subspaces, 24 dorothea prototypes,
/// ~8 live rcv1 topics).
fn rank_for(name: &str) -> usize {
    match name {
        "dorothea-like" => 24,
        _ => 10,
    }
}

#[test]
fn fd_detector_beats_random_on_every_standard_dataset() {
    for stream in standard_datasets(DatasetScale::Small) {
        let k = rank_for(&stream.name);
        let ell = (2 * k).max(32);
        let cfg = DetectorConfig::new(k, ell).with_warmup(WARMUP);
        let mut fd = cfg.build_fd(stream.dim);
        let auc = auc_of(&mut fd, &stream);
        let mut rng_det = RandomScoreDetector::new(stream.dim, 1);
        let random_auc = auc_of(&mut rng_det, &stream);
        assert!(auc > 0.85, "{}: FD AUC {auc} too low", stream.name);
        assert!(
            auc > random_auc + 0.2,
            "{}: FD ({auc}) does not beat random ({random_auc})",
            stream.name
        );
    }
}

#[test]
fn all_sketch_arms_detect_on_synth_lowrank() {
    let stream = synth_lowrank(DatasetScale::Small);
    // k matches the generator's true rank (10 at small scale).
    let cfg = DetectorConfig::new(10, 32).with_warmup(WARMUP);
    let mut dets: Vec<Box<dyn StreamingDetector>> = vec![
        Box::new(cfg.build_fd(stream.dim)),
        Box::new(cfg.build_rp(stream.dim)),
        Box::new(cfg.build_cs(stream.dim)),
        Box::new(cfg.build_rs(stream.dim)),
    ];
    for det in &mut dets {
        let name = det.name();
        let scores = run(det.as_mut(), &stream);
        let labels = stream.labels();
        let auc = roc_auc(&scores[WARMUP..], &labels[WARMUP..]).unwrap();
        assert!(auc > 0.85, "{name}: AUC {auc}");
        let ap = average_precision(&scores[WARMUP..], &labels[WARMUP..]).unwrap();
        assert!(ap > 0.3, "{name}: AP {ap}");
    }
}

#[test]
fn alerting_pipeline_flags_planted_anomalies() {
    let stream = synth_lowrank(DatasetScale::Small);
    let det = DetectorConfig::new(10, 32)
        .with_warmup(WARMUP)
        .build_fd(stream.dim);
    let mut alerting = ThresholdedDetector::new(det, 0.02, 200);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut total_anom_seen = 0usize;
    for (i, (v, label)) in stream.iter().enumerate() {
        let alert = alerting.process(v);
        if i < 400 {
            continue;
        }
        if label {
            total_anom_seen += 1;
        }
        if alert.is_anomaly {
            if label {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let recall = tp as f64 / total_anom_seen.max(1) as f64;
    assert!(recall > 0.7, "recall {recall} ({tp}/{total_anom_seen})");
    // FP rate should be loosely near the 2% target.
    let n_normal = stream.len() - 400 - total_anom_seen;
    let fp_rate = fp as f64 / n_normal as f64;
    assert!(fp_rate < 0.08, "fp rate {fp_rate}");
}

#[test]
fn normalized_detector_handles_heterogeneous_scales() {
    // Blow one feature up by 1e6: the raw detector's subspace is dominated
    // by that coordinate; the normalized wrapper restores detection.
    let base = synth_lowrank(DatasetScale::Small);
    let mut scaled = base.clone();
    for p in &mut scaled.points {
        p.values[0] *= 1e6;
    }
    let cfg = DetectorConfig::new(10, 32).with_warmup(WARMUP);
    let mut normalized = NormalizedDetector::new(cfg.build_fd(scaled.dim));
    let auc = auc_of(&mut normalized, &scaled);
    assert!(auc > 0.75, "normalized AUC {auc}");
}

#[test]
fn sparse_pipeline_matches_dense_on_sparse_dataset() {
    use sketchad_linalg::SparseVec;
    let stream = sketchad_streams::dorothea_like(DatasetScale::Small);
    let cfg = DetectorConfig::new(24, 48).with_warmup(WARMUP);
    let mut dense_det = cfg.build_cs(stream.dim);
    let mut sparse_det = cfg.build_cs(stream.dim);
    let mut dense_scores = Vec::new();
    let mut sparse_scores = Vec::new();
    for (v, _) in stream.iter() {
        dense_scores.push(dense_det.process(v));
        sparse_scores.push(sparse_det.process_sparse(&SparseVec::from_dense(v)));
    }
    for (i, (a, b)) in dense_scores.iter().zip(sparse_scores.iter()).enumerate() {
        assert!((a - b).abs() < 1e-10, "point {i}: dense {a} vs sparse {b}");
    }
    let labels = stream.labels();
    let auc = roc_auc(&sparse_scores[WARMUP..], &labels[WARMUP..]).unwrap();
    assert!(auc > 0.8, "sparse-path AUC {auc}");
}

#[test]
fn mean_distance_baseline_is_weaker_on_subspace_anomalies() {
    // The subspace structure is what the sketch detectors exploit; the
    // diagonal baseline must not dominate them on the canonical dataset.
    let stream = synth_lowrank(DatasetScale::Small);
    let cfg = DetectorConfig::new(10, 32).with_warmup(WARMUP);
    let mut fd = cfg.build_fd(stream.dim);
    let fd_auc = auc_of(&mut fd, &stream);
    let mut md = MeanDistanceDetector::new(stream.dim, WARMUP);
    let md_auc = auc_of(&mut md, &stream);
    assert!(
        fd_auc >= md_auc - 0.02,
        "FD ({fd_auc}) should not lose to mean-distance ({md_auc})"
    );
}
