//! Reproducibility: every pipeline component is deterministic under its
//! seed — the property all experiment artifacts rely on.

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_streams::{standard_datasets, synth_drift, DatasetScale};

fn scores_of(
    det: &mut dyn StreamingDetector,
    stream: &sketchad_streams::LabeledStream,
) -> Vec<f64> {
    let mut scores = Vec::with_capacity(stream.len());
    for (v, _) in stream.iter() {
        scores.push(det.process(v));
    }
    scores
}

#[test]
fn datasets_regenerate_identically() {
    let a = standard_datasets(DatasetScale::Small);
    let b = standard_datasets(DatasetScale::Small);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "{} differs between generations", x.name);
    }
    assert_eq!(
        synth_drift(DatasetScale::Small),
        synth_drift(DatasetScale::Small)
    );
}

#[test]
fn detectors_are_bitwise_reproducible() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let cfg = DetectorConfig::new(5, 32).with_warmup(100).with_seed(1234);

    let mut fd1 = cfg.build_fd(stream.dim);
    let mut fd2 = cfg.build_fd(stream.dim);
    assert_eq!(scores_of(&mut fd1, &stream), scores_of(&mut fd2, &stream));

    let mut rp1 = cfg.build_rp(stream.dim);
    let mut rp2 = cfg.build_rp(stream.dim);
    assert_eq!(scores_of(&mut rp1, &stream), scores_of(&mut rp2, &stream));

    let mut cs1 = cfg.build_cs(stream.dim);
    let mut cs2 = cfg.build_cs(stream.dim);
    assert_eq!(scores_of(&mut cs1, &stream), scores_of(&mut cs2, &stream));

    let mut rs1 = cfg.build_rs(stream.dim);
    let mut rs2 = cfg.build_rs(stream.dim);
    assert_eq!(scores_of(&mut rs1, &stream), scores_of(&mut rs2, &stream));
}

#[test]
fn different_seeds_change_randomized_but_not_deterministic_arms() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let cfg_a = DetectorConfig::new(5, 32).with_warmup(100).with_seed(1);
    let cfg_b = DetectorConfig::new(5, 32).with_warmup(100).with_seed(2);

    // FD is deterministic: seed must not matter.
    let mut fd_a = cfg_a.build_fd(stream.dim);
    let mut fd_b = cfg_b.build_fd(stream.dim);
    assert_eq!(scores_of(&mut fd_a, &stream), scores_of(&mut fd_b, &stream));

    // RP is randomized: seeds must matter.
    let mut rp_a = cfg_a.build_rp(stream.dim);
    let mut rp_b = cfg_b.build_rp(stream.dim);
    assert_ne!(scores_of(&mut rp_a, &stream), scores_of(&mut rp_b, &stream));
}

#[test]
fn windowed_detector_is_reproducible() {
    let stream = synth_drift(DatasetScale::Small);
    let cfg = DetectorConfig::new(4, 24).with_warmup(100);
    let mut w1 = cfg.build_windowed_fd(stream.dim, 50, 4);
    let mut w2 = cfg.build_windowed_fd(stream.dim, 50, 4);
    assert_eq!(scores_of(&mut w1, &stream), scores_of(&mut w2, &stream));
}

#[test]
fn csv_roundtrip_preserves_detector_output() {
    let stream = standard_datasets(DatasetScale::Small)
        .remove(0)
        .truncated(500);
    let mut path = std::env::temp_dir();
    path.push(format!("sketchad-determinism-{}.csv", std::process::id()));
    sketchad_streams::io::write_csv(&stream, &path).unwrap();
    let reloaded = sketchad_streams::io::read_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let cfg = DetectorConfig::new(5, 16).with_warmup(100);
    let mut d1 = cfg.build_fd(stream.dim);
    let mut d2 = cfg.build_fd(reloaded.dim);
    let s1 = scores_of(&mut d1, &stream);
    let s2 = scores_of(&mut d2, &reloaded);
    // CSV uses exact f64 display formatting, so the roundtrip is lossless
    // and the scores are bitwise identical.
    assert_eq!(s1, s2);
}
