//! Fault-injection suite: drives the serving engine through the seeded
//! [`FaultPlan`] harness and asserts the fault-tolerance contracts —
//!
//! * **No-fault fidelity**: a benign plan on one shard produces scores
//!   bitwise identical to driving the detector directly.
//! * **Poison isolation**: quarantined rows never touch the sketch; the
//!   scores of the surviving rows are bitwise identical to a run that was
//!   never shown the poison at all.
//! * **Panic recovery**: an injected detector panic restarts the worker
//!   from its last published snapshot and the pipeline finishes cleanly.
//! * **Conservation**: under every fault mix,
//!   `scored + dropped + rejected + shed + crash_lost == submitted`.

use proptest::prelude::*;
use sketchad_serve::BackpressurePolicy;
use sketchad_system_tests::{base_detector, clean_point, poisoned_point, FaultPlan, FaultRun};

/// One shard, blocking backpressure, no faults: the engine is a
/// deterministic pipeline around the detector, so its scores must be
/// bitwise identical to calling `process` directly.
#[test]
fn no_fault_path_is_bitwise_identical_to_direct_processing() {
    const N: u64 = 500;
    let plan = FaultPlan::benign(11);
    let run = FaultRun::execute(&plan, N, 1, BackpressurePolicy::Block);
    assert!(run.conservation_holds());
    assert_eq!(run.outcome.accepted, N);
    assert_eq!(run.panics_fired, 0);
    assert_eq!(run.report.quarantine.total(), 0);

    let mut direct = base_detector(plan.seed);
    let direct_bits: Vec<u64> = (0..N)
        .map(|i| direct.process(&clean_point(plan.seed, i)).to_bits())
        .collect();
    let engine_bits: Vec<u64> = run
        .report
        .scores
        .iter()
        .map(|&(_, s)| s.to_bits())
        .collect();
    assert_eq!(
        engine_bits, direct_bits,
        "engine must be a transparent wrapper on the no-fault path"
    );
}

/// Poisoned rows are quarantined before the detector ever sees them: the
/// scores of the surviving (clean) rows are bitwise identical to a control
/// run whose stream contained only those clean rows.
#[test]
fn quarantined_poison_leaves_detector_state_bitwise_unchanged() {
    const N: u64 = 600;
    let poisoned_plan = FaultPlan::benign(23).with_poison_every(9);
    let poisoned_run = FaultRun::execute(&poisoned_plan, N, 1, BackpressurePolicy::Block);
    assert!(poisoned_run.conservation_holds());
    assert!(
        poisoned_run.injected_poison > 0,
        "the fault must actually fire"
    );
    assert_eq!(
        poisoned_run.report.stats.total_rejected, poisoned_run.injected_poison,
        "every poisoned row is rejected, nothing else is"
    );
    assert_eq!(
        poisoned_run.report.quarantine.total(),
        poisoned_run.injected_poison
    );

    // Control: the same detector fed only the clean rows, in order.
    let mut control = base_detector(poisoned_plan.seed);
    let control_bits: Vec<u64> = (0..N)
        .filter(|&i| poisoned_point(&poisoned_plan, i).is_none())
        .map(|i| {
            control
                .process(&clean_point(poisoned_plan.seed, i))
                .to_bits()
        })
        .collect();
    let run_bits: Vec<u64> = poisoned_run
        .report
        .scores
        .iter()
        .map(|&(_, s)| s.to_bits())
        .collect();
    assert_eq!(
        run_bits, control_bits,
        "poison must not perturb the sketch: surviving scores diverged"
    );
}

/// An injected detector panic is recovered by the shard supervisor: the
/// worker restarts from its last published snapshot, the stream finishes,
/// loss is bounded to the in-flight points, and accounting stays exact.
#[test]
fn injected_panic_recovers_with_bounded_loss() {
    const N: u64 = 400;
    let plan = FaultPlan::benign(5).with_panic_after(120);
    let run = FaultRun::execute(&plan, N, 2, BackpressurePolicy::Block);
    assert!(run.panics_fired >= 1, "the injected panic must fire");
    assert!(run.conservation_holds());
    let stats = &run.report.stats;
    assert_eq!(stats.total_restarts, run.panics_fired);
    assert!(stats.degraded_shards.is_empty(), "budget covers the faults");
    // Loss is bounded: at most one micro-batch per panic died in flight.
    assert!(stats.total_crash_lost >= run.panics_fired);
    assert!(stats.total_crash_lost <= run.panics_fired * 64);
    // Shard 1 (no fault injected) lost nothing.
    assert_eq!(stats.shards[1].restarts, 0);
    assert_eq!(stats.shards[1].crash_lost, 0);
    for &(_, score) in &run.report.scores {
        assert!(score.is_finite());
    }
}

/// Queue saturation under the shedding policies: producers never block,
/// nothing hangs, and the loss accounting is exact whichever way each
/// point went.
#[test]
fn queue_saturation_sheds_with_exact_accounting() {
    const N: u64 = 3_000;
    let plan = FaultPlan::benign(17).with_queue_capacity(2);
    for policy in [
        BackpressurePolicy::DropNewest,
        BackpressurePolicy::ShedOldest,
    ] {
        let run = FaultRun::execute(&plan, N, 1, policy);
        assert!(run.conservation_holds(), "policy {policy:?}");
        let stats = &run.report.stats;
        assert_eq!(run.report.scores.len() as u64, stats.total_processed);
        match policy {
            // ShedOldest admits everything; losses are evictions (shed).
            BackpressurePolicy::ShedOldest => {
                assert_eq!(run.outcome.accepted, N);
                assert_eq!(stats.total_dropped, 0);
            }
            // DropNewest refuses at the full queue; losses are drops.
            _ => {
                assert_eq!(stats.total_shed, 0);
                assert_eq!(run.outcome.accepted, stats.total_processed);
            }
        }
    }
}

/// The full seeded mix — poison, panics, and tiny queues at once — across
/// several seeds: whatever combination a seed derives, the pipeline
/// finishes, every score is finite, and every point is accounted for.
#[test]
fn seeded_fault_mixes_always_conserve_and_stay_finite() {
    for seed in [1u64, 2, 3, 77, 2024] {
        let plan = FaultPlan::from_seed(seed);
        let run = FaultRun::execute(&plan, 500, 2, BackpressurePolicy::ShedOldest);
        assert!(run.conservation_holds(), "seed {seed}: conservation broke");
        assert!(run.injected_poison > 0, "seed {seed}: no poison injected");
        assert_eq!(
            run.report.stats.total_rejected, run.injected_poison,
            "seed {seed}: rejection accounting"
        );
        for &(_, score) in &run.report.scores {
            assert!(score.is_finite(), "seed {seed}: non-finite score leaked");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: whatever the poison cadence and seed, an engine fed
    /// randomly interleaved poison rows never emits a non-finite score and
    /// never loses track of a point.
    #[test]
    fn poison_interleaving_never_leaks_nonfinite_scores(
        seed in 0u64..10_000,
        every in 2u64..12,
        shards in 1usize..4,
    ) {
        let plan = FaultPlan::benign(seed).with_poison_every(every);
        let run = FaultRun::execute(&plan, 160, shards, BackpressurePolicy::Block);
        prop_assert!(run.conservation_holds());
        prop_assert!(run.injected_poison > 0);
        prop_assert_eq!(run.report.stats.total_rejected, run.injected_poison);
        prop_assert_eq!(
            run.report.stats.total_processed,
            run.submitted - run.injected_poison
        );
        for &(_, score) in &run.report.scores {
            prop_assert!(score.is_finite());
        }
    }
}
