//! Drift experiments at test scale: forgetting detectors recover after a
//! subspace switch; the global detector does not.

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_eval::roc_auc;
use sketchad_streams::{generate_drift_stream, DriftKind, LabeledStream, LowRankStreamConfig};

const WARMUP: usize = 150;

fn drift_stream() -> LabeledStream {
    generate_drift_stream(
        LowRankStreamConfig {
            n: 3_000,
            d: 40,
            k: 4,
            anomaly_rate: 0.03,
            seed: 0xd21f7,
            ..Default::default()
        },
        DriftKind::AbruptSwitch { at_fraction: 0.5 },
    )
}

/// AUC over (transition, steady-state) regions after the switch: the
/// transition is the 400 points right after the drift; steady state is the
/// rest of the stream.
fn post_drift_aucs(det: &mut dyn StreamingDetector, stream: &LabeledStream) -> (f64, f64) {
    let mut scores = Vec::with_capacity(stream.len());
    for (v, _) in stream.iter() {
        scores.push(det.process(v));
    }
    let labels = stream.labels();
    let mid = stream.len() / 2;
    let trans = roc_auc(&scores[mid..mid + 400], &labels[mid..mid + 400]).expect("both classes");
    let steady = roc_auc(&scores[mid + 400..], &labels[mid + 400..]).expect("both classes");
    (trans, steady)
}

#[test]
fn global_detector_degrades_after_switch() {
    let stream = drift_stream();
    let cfg = DetectorConfig::new(4, 32).with_warmup(WARMUP);
    let mut global = cfg.build_fd(stream.dim);
    let (trans, steady) = post_drift_aucs(&mut global, &stream);
    // The stale global subspace misranks post-switch normals vs anomalies
    // during the transition, and never fully recovers (the old regime's
    // energy keeps polluting the global model).
    assert!(
        trans < 0.8,
        "global transition AUC unexpectedly high ({trans})"
    );
    assert!(
        steady < 0.97,
        "global steady-state AUC unexpectedly high ({steady})"
    );
}

#[test]
fn decay_detector_recovers_after_switch() {
    let stream = drift_stream();
    let cfg = DetectorConfig::new(4, 32)
        .with_warmup(WARMUP)
        .with_decay(0.9, 25);
    let mut det = cfg.build_fd(stream.dim);
    let (trans, steady) = post_drift_aucs(&mut det, &stream);
    assert!(
        steady > 0.97,
        "decay detector failed to recover (AUC {steady})"
    );
    assert!(
        trans > 0.8,
        "decay detector too slow in transition ({trans})"
    );
}

#[test]
fn windowed_detector_recovers_after_switch() {
    let stream = drift_stream();
    let cfg = DetectorConfig::new(4, 32).with_warmup(WARMUP);
    let mut det = cfg.build_windowed_fd(stream.dim, 100, 4);
    let (trans, steady) = post_drift_aucs(&mut det, &stream);
    assert!(
        steady > 0.97,
        "windowed detector failed to recover (AUC {steady})"
    );
    assert!(
        trans > 0.8,
        "windowed detector too slow in transition ({trans})"
    );
}

#[test]
fn forgetting_detectors_beat_global_after_drift() {
    let stream = drift_stream();
    let cfg = DetectorConfig::new(4, 32).with_warmup(WARMUP);
    let mut global = cfg.build_fd(stream.dim);
    let (g_trans, g_steady) = post_drift_aucs(&mut global, &stream);
    let mut decay = cfg.with_decay(0.9, 25).build_fd(stream.dim);
    let (d_trans, d_steady) = post_drift_aucs(&mut decay, &stream);
    let mut window = cfg.build_windowed_fd(stream.dim, 100, 4);
    let (w_trans, w_steady) = post_drift_aucs(&mut window, &stream);
    assert!(
        d_trans > g_trans + 0.1,
        "decay trans ({d_trans}) vs global ({g_trans})"
    );
    assert!(
        w_trans > g_trans + 0.1,
        "window trans ({w_trans}) vs global ({g_trans})"
    );
    assert!(
        d_steady > g_steady + 0.03,
        "decay steady ({d_steady}) vs global ({g_steady})"
    );
    assert!(
        w_steady > g_steady + 0.03,
        "window steady ({w_steady}) vs global ({g_steady})"
    );
}

#[test]
fn all_variants_agree_before_drift() {
    let stream = drift_stream();
    let cfg = DetectorConfig::new(4, 32).with_warmup(WARMUP);
    let pre_auc = |det: &mut dyn StreamingDetector| {
        let mut scores = Vec::new();
        for (v, _) in stream.iter() {
            scores.push(det.process(v));
        }
        let labels = stream.labels();
        let end = stream.len() / 2;
        roc_auc(&scores[WARMUP..end], &labels[WARMUP..end]).unwrap()
    };
    let mut global = cfg.build_fd(stream.dim);
    let mut decay = cfg.with_decay(0.9, 25).build_fd(stream.dim);
    let mut window = cfg.build_windowed_fd(stream.dim, 100, 4);
    let g = pre_auc(&mut global);
    let d = pre_auc(&mut decay);
    let w = pre_auc(&mut window);
    for (name, auc) in [("global", g), ("decay", d), ("window", w)] {
        assert!(auc > 0.9, "{name} pre-drift AUC {auc}");
    }
}
