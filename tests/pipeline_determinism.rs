//! Serving-engine determinism: a 1-shard pipeline is bit-for-bit identical
//! to driving the detector directly, and multi-shard runs are reproducible
//! across executions.

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_serve::{BackpressurePolicy, PartitionStrategy, ServeConfig, ServeEngine};
use sketchad_streams::{standard_datasets, DatasetScale, LabeledStream};

fn scores_of(det: &mut dyn StreamingDetector, stream: &LabeledStream) -> Vec<f64> {
    let mut scores = Vec::with_capacity(stream.len());
    for (v, _) in stream.iter() {
        scores.push(det.process(v));
    }
    scores
}

fn engine_scores(stream: &LabeledStream, config: ServeConfig) -> Vec<f64> {
    let dim = stream.dim;
    let mut engine = ServeEngine::start(config, move |_shard| {
        Box::new(
            DetectorConfig::new(5, 32)
                .with_warmup(100)
                .with_seed(1234)
                .build_fd(dim),
        ) as Box<dyn StreamingDetector + Send>
    })
    .expect("engine start");
    engine
        .submit_batch(stream.iter().map(|(v, _)| v.to_vec()))
        .expect("submit");
    engine.finish().expect("drain").scores_in_order()
}

/// The core contract: one shard under blocking backpressure sees exactly
/// the same point sequence as a directly driven detector, so every score
/// matches to the last bit — threading and queueing add no numeric noise.
#[test]
fn one_shard_engine_matches_direct_detector_bitwise() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let mut direct = DetectorConfig::new(5, 32)
        .with_warmup(100)
        .with_seed(1234)
        .build_fd(stream.dim);
    let direct_scores = scores_of(&mut direct, &stream);

    let engine_scores = engine_scores(&stream, ServeConfig::new(1));

    assert_eq!(direct_scores.len(), engine_scores.len());
    for (i, (a, b)) in direct_scores.iter().zip(&engine_scores).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "score {i} differs: direct {a} vs engine {b}"
        );
    }
}

/// Multi-shard runs are reproducible: the same stream through the same
/// 4-shard round-robin engine yields identical scores run-over-run (each
/// shard sees a deterministic substream).
#[test]
fn four_shard_engine_is_reproducible() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let config = || {
        ServeConfig::new(4)
            .with_queue_capacity(64)
            .with_backpressure(BackpressurePolicy::Block)
    };
    let a = engine_scores(&stream, config());
    let b = engine_scores(&stream, config());
    assert_eq!(a.len(), stream.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "score {i} differs across runs");
    }
}

/// Key-hash partitioning is also reproducible run-over-run: the stable
/// hash pins every key to one shard, so per-shard substreams (and hence
/// scores) are identical across executions.
#[test]
fn key_hash_engine_is_reproducible() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let run = || {
        let dim = stream.dim;
        let config = ServeConfig::new(3).with_partition(PartitionStrategy::KeyHash);
        let mut engine = ServeEngine::start(config, move |_shard| {
            Box::new(
                DetectorConfig::new(5, 32)
                    .with_warmup(100)
                    .with_seed(1234)
                    .build_fd(dim),
            ) as Box<dyn StreamingDetector + Send>
        })
        .expect("engine start");
        for (i, (v, _)) in stream.iter().enumerate() {
            engine
                .submit_keyed(i as u64 % 17, v.to_vec())
                .expect("submit");
        }
        engine.finish().expect("drain").scores_in_order()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "key-hash run must reproduce exactly");
}
