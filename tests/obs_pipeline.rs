//! End-to-end observability: a real dataset through the instrumented
//! serving engine produces a merged report whose spans, counters, and
//! events are consistent with the pipeline's own statistics — and whose
//! JSON artifact round-trips — while leaving every score untouched.

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_obs::{ObsArtifact, ObsReport, OBS_SCHEMA};
use sketchad_serve::{PipelineReport, ServeConfig, ServeEngine, TelemetryConfig};
use sketchad_streams::{standard_datasets, DatasetScale, LabeledStream};

fn detector_config() -> DetectorConfig {
    DetectorConfig::new(5, 32).with_warmup(100).with_seed(1234)
}

fn run_instrumented(stream: &LabeledStream, shards: usize) -> PipelineReport {
    let dim = stream.dim;
    let config = ServeConfig::new(shards).with_snapshot_every(128);
    let mut engine = ServeEngine::start_instrumented(config, move |_shard, recorder| {
        Box::new(detector_config().build_fd(dim).with_recorder(recorder))
            as Box<dyn StreamingDetector + Send>
    })
    .expect("engine start");
    engine
        .submit_batch(stream.iter().map(|(v, _)| v.to_vec()))
        .expect("submit");
    engine.finish().expect("drain")
}

/// The merged report tells a story consistent with the pipeline stats:
/// every processed point was a sketch update and a queue-depth sample,
/// models refreshed and were snapshotted, and the counters agree with the
/// event log.
#[test]
fn instrumented_pipeline_report_is_internally_consistent() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let report = run_instrumented(&stream, 2);
    let stats = &report.stats;
    assert_eq!(stats.total_processed as usize, stream.len());
    let obs = stats.obs.as_ref().expect("instrumented run carries obs");

    let updates = obs.span("sketch_update").expect("sketch_update span");
    assert_eq!(updates.count, stats.total_processed);
    assert!(obs.span("score").expect("score span").count > 0);
    assert!(obs.span("model_refresh").expect("refresh span").count > 0);
    assert_eq!(
        obs.gauge("queue_depth").expect("queue_depth gauge").samples,
        stats.total_processed
    );

    // Refresh events fired (one "warmup" refresh per shard, then periodic).
    assert!(obs.event_count("refresh_fired") >= 2);
    // Snapshots: every 128 points per shard plus one final per shard, and
    // the counter, event log, and span all count the same publications.
    let snapshots = obs.counter("snapshots_published");
    assert!(snapshots >= 2);
    assert_eq!(obs.event_count("snapshot_published") as u64, snapshots);
    assert_eq!(obs.span("snapshot_publish").expect("span").count, snapshots);
}

/// The exported artifact round-trips through JSON with nothing lost.
#[test]
fn obs_artifact_round_trips_from_a_real_run() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let report = run_instrumented(&stream, 2);
    let obs = report.stats.obs.expect("obs report");
    let artifact = ObsArtifact::new("integration-test", obs)
        .with_context("dataset", stream.name.as_str())
        .with_context("shards", "2");
    let json = artifact.to_json();
    let back: ObsArtifact = serde_json::from_str(&json).expect("parse artifact");
    assert_eq!(back, artifact);
    assert_eq!(back.schema, OBS_SCHEMA);
    assert!(back.report.event_count("refresh_fired") > 0);
}

/// Observability must be a pure read: the instrumented engine emits scores
/// bit-identical to the uninstrumented one on the same stream — and so
/// does the instrumented engine with a live sampler attached on top.
#[test]
fn instrumentation_leaves_pipeline_scores_bit_identical() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let dim = stream.dim;
    let mut plain_engine = ServeEngine::start(ServeConfig::new(2), move |_shard| {
        Box::new(detector_config().build_fd(dim)) as Box<dyn StreamingDetector + Send>
    })
    .expect("engine start");
    plain_engine
        .submit_batch(stream.iter().map(|(v, _)| v.to_vec()))
        .expect("submit");
    let plain = plain_engine.finish().expect("drain").scores_in_order();
    let metered = run_instrumented(&stream, 2).scores_in_order();
    assert_eq!(plain.len(), metered.len());
    for (i, (a, b)) in plain.iter().zip(&metered).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "score {i}: {a} vs {b}");
    }

    // Third arm: instrumentation plus the telemetry sampler, sampling as
    // fast as the clock allows. Still bit-identical.
    let config = ServeConfig::new(2).with_snapshot_every(128);
    let mut sampled_engine = ServeEngine::start_instrumented(config, move |_shard, recorder| {
        Box::new(detector_config().build_fd(dim).with_recorder(recorder))
            as Box<dyn StreamingDetector + Send>
    })
    .expect("engine start");
    sampled_engine
        .start_telemetry(
            &TelemetryConfig::new().with_sample_every(std::time::Duration::from_millis(1)),
        )
        .expect("start telemetry");
    sampled_engine
        .submit_batch(stream.iter().map(|(v, _)| v.to_vec()))
        .expect("submit");
    let sampled = sampled_engine.finish().expect("drain").scores_in_order();
    assert_eq!(plain.len(), sampled.len());
    for (i, (a, b)) in plain.iter().zip(&sampled).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "sampled score {i}: {a} vs {b}");
    }
}

/// Per-shard reports merge additively: the union of two shards' counts is
/// what a single merged report shows. (Checked via ObsReport::merge on
/// fresh reports so the integration surface — merge used by the engine —
/// is exercised against real recorded data.)
#[test]
fn merging_shard_reports_is_additive() {
    let stream = standard_datasets(DatasetScale::Small).remove(0);
    let one = run_instrumented(&stream, 1);
    let obs_one = one.stats.obs.as_ref().expect("obs");

    let mut merged = ObsReport::default();
    merged.merge(obs_one);
    merged.merge(obs_one);
    assert_eq!(
        merged.span("sketch_update").unwrap().count,
        2 * obs_one.span("sketch_update").unwrap().count
    );
    assert_eq!(
        merged.counter("snapshots_published"),
        2 * obs_one.counter("snapshots_published")
    );
    assert_eq!(merged.events.len(), 2 * obs_one.events.len());
}
