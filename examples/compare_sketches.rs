//! Side-by-side comparison of every sketch arm against the exact-SVD
//! baseline on one stream: accuracy, runtime, and memory footprint.
//!
//! ```text
//! cargo run --release -p sketchad-core --example compare_sketches
//! ```

use sketchad_core::{DetectorConfig, ExactSvdDetector, ScoreKind, StreamingDetector};
use sketchad_eval::{roc_auc, Stopwatch};
use sketchad_streams::{generate_low_rank_stream, LowRankStreamConfig};

fn run(det: &mut dyn StreamingDetector, stream: &sketchad_streams::LabeledStream) -> (f64, f64) {
    let sw = Stopwatch::start();
    let mut scores = Vec::with_capacity(stream.len());
    for (v, _) in stream.iter() {
        scores.push(det.process(v));
    }
    let secs = sw.seconds();
    let labels = stream.labels();
    let auc = roc_auc(&scores[256..], &labels[256..]).unwrap_or(f64::NAN);
    (auc, secs)
}

fn main() {
    // High-dimensional stream: this is the regime the sketches exist for
    // (the exact baseline's d×d covariance is 25x larger than a sketch).
    let stream = generate_low_rank_stream(LowRankStreamConfig {
        n: 3_000,
        d: 400,
        k: 10,
        anomaly_rate: 0.02,
        seed: 7,
        ..Default::default()
    });
    let d = stream.dim;
    let k = 10;
    let ell = 32;
    let cfg = DetectorConfig::new(k, ell).with_warmup(256);

    println!(
        "dataset: {} (n={}, d={d}), model rank k={k}, sketch size ell={ell}\n",
        stream.name,
        stream.len()
    );
    println!(
        "{:<24} {:>8} {:>10} {:>16}",
        "method", "AUC", "runtime", "state (f64s)"
    );

    let mut exact = ExactSvdDetector::new(d, k, ScoreKind::RelativeProjection, 256, 256);
    let (auc, secs) = run(&mut exact, &stream);
    println!(
        "{:<24} {auc:>8.4} {:>9.3}s {:>16}",
        "Exact-SVD (O(d^2))",
        secs,
        d * d
    );

    let mut fd = cfg.build_fd(d);
    let (auc, secs) = run(&mut fd, &stream);
    println!(
        "{:<24} {auc:>8.4} {:>9.3}s {:>16}",
        "FrequentDirections",
        secs,
        2 * ell * d
    );

    let mut rp = cfg.build_rp(d);
    let (auc, secs) = run(&mut rp, &stream);
    println!(
        "{:<24} {auc:>8.4} {:>9.3}s {:>16}",
        "RandomProjection",
        secs,
        ell * d
    );

    let mut cs = cfg.build_cs(d);
    let (auc, secs) = run(&mut cs, &stream);
    println!(
        "{:<24} {auc:>8.4} {:>9.3}s {:>16}",
        "CountSketch",
        secs,
        ell * d
    );

    let mut rs = cfg.build_rs(d);
    let (auc, secs) = run(&mut rs, &stream);
    println!(
        "{:<24} {auc:>8.4} {:>9.3}s {:>16}",
        "RowSampling",
        secs,
        ell * d
    );

    println!(
        "\nThe sketches hold ~{}x less state than the exact baseline",
        d / (2 * ell)
    );
    println!("while matching its AUC — the paper's headline trade-off.");
}
