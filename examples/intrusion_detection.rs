//! Network-intrusion scenario: detect a coordinated denial-of-service
//! burst in a stream of flow records, and *explain* each alert by the
//! feature dimensions driving its residual.
//!
//! Flow features (d = 24): log packet counts, log byte counts, duration,
//! inter-arrival statistics, and a hashed port/protocol signature — the
//! usual shape of modern flow exporters. Normal traffic is a mixture of a
//! few service profiles (web, dns, mail, …), i.e. genuinely low-rank;
//! the attack is a sudden group of near-identical flows from one profile
//! that no service exhibits.
//!
//! ```text
//! cargo run --release -p sketchad-core --example intrusion_detection
//! ```

use rand::Rng;
use sketchad_core::{DetectorConfig, ScoreKind, StreamingDetector};
use sketchad_linalg::rng::{gaussian, seeded_rng};

const D: usize = 24;
const N_PROFILES: usize = 6;

/// One service profile: a template flow-feature vector.
fn profiles(rng: &mut rand::rngs::StdRng) -> Vec<Vec<f64>> {
    (0..N_PROFILES)
        .map(|_| (0..D).map(|_| 2.0 + gaussian(rng).abs() * 2.0).collect())
        .collect()
}

fn normal_flow(rng: &mut rand::rngs::StdRng, profiles: &[Vec<f64>]) -> Vec<f64> {
    let p = &profiles[rng.gen_range(0..profiles.len())];
    p.iter()
        .map(|&v| v * (1.0 + 0.08 * gaussian(rng)))
        .collect()
}

/// The DoS burst: tiny duration, huge packet rate, one hashed port bucket
/// saturated — a pattern orthogonal to every service profile.
fn attack_flow(rng: &mut rand::rngs::StdRng) -> Vec<f64> {
    let mut v = vec![0.0; D];
    v[0] = 9.0 + 0.1 * gaussian(rng); // log packet count: extreme
    v[1] = 3.0 + 0.1 * gaussian(rng); // log bytes: small packets
    v[7] = 8.0 + 0.1 * gaussian(rng); // syn-flag rate bucket
    v[19] = 7.5 + 0.1 * gaussian(rng); // hashed target-port bucket
    v
}

fn main() {
    let mut rng = seeded_rng(2024);
    let profiles = profiles(&mut rng);

    // Stream: 5000 normal flows with a 120-flow DoS burst at t=3000.
    let mut stream: Vec<(Vec<f64>, bool)> = Vec::new();
    for t in 0..5000 {
        if (3000..3120).contains(&t) {
            stream.push((attack_flow(&mut rng), true));
        } else {
            stream.push((normal_flow(&mut rng, &profiles), false));
        }
    }

    let mut det = DetectorConfig::new(N_PROFILES, 32)
        .with_warmup(400)
        .with_score(ScoreKind::RelativeProjection)
        .build_fd(D);

    let mut first_detection: Option<usize> = None;
    let mut scores = Vec::with_capacity(stream.len());
    for (t, (flow, _)) in stream.iter().enumerate() {
        let s = det.process(flow);
        if s > 0.5 && first_detection.is_none() && t >= 400 {
            first_detection = Some(t);
        }
        scores.push(s);
    }

    // Accuracy summary.
    let labels: Vec<bool> = stream.iter().map(|(_, l)| *l).collect();
    let auc = sketchad_eval::roc_auc(&scores[400..], &labels[400..]).unwrap();
    println!("flows processed: {}", stream.len());
    println!("ROC-AUC (post-warmup): {auc:.4}");
    match first_detection {
        Some(t) => println!(
            "first high-score flow at t={t} (burst starts at t=3000 → detection lag {})",
            t as i64 - 3000
        ),
        None => println!("no flow crossed the 0.5 score level"),
    }

    // Explainability: which feature dimensions drive the anomaly?
    let burst_flow = &stream[3050].0;
    let residual = det.explain(burst_flow).expect("model is built");
    let mut ranked: Vec<(usize, f64)> = residual
        .iter()
        .enumerate()
        .map(|(i, &v)| (i, v.abs()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("top residual dimensions for a burst flow (feature, |residual|):");
    for (dim, mag) in ranked.iter().take(4) {
        let name = match dim {
            0 => "log-packet-count".to_string(),
            1 => "log-bytes".to_string(),
            7 => "syn-rate-bucket".to_string(),
            19 => "port-hash-19".to_string(),
            other => format!("f{other}"),
        };
        println!("  {name}: {mag:.2}");
    }
}
