//! Drifting-sensor scenario: a sensor array whose correlation structure
//! drifts over time (re-calibration, seasonal effects). A global detector
//! degrades after the drift; decay and sliding-window variants recover.
//!
//! ```text
//! cargo run --release -p sketchad-core --example drifting_sensors
//! ```

use sketchad_core::{DetectorConfig, StreamingDetector};
use sketchad_eval::roc_auc;
use sketchad_streams::{generate_drift_stream, DriftKind, LowRankStreamConfig};

fn main() {
    // 64 sensors whose readings live on a rank-6 manifold that is abruptly
    // re-calibrated halfway through the stream; 2% faulty readings.
    let cfg = LowRankStreamConfig {
        n: 8_000,
        d: 64,
        k: 6,
        anomaly_rate: 0.02,
        seed: 99,
        ..Default::default()
    };
    let stream = generate_drift_stream(cfg, DriftKind::AbruptSwitch { at_fraction: 0.5 });
    let warmup = 400;
    let labels = stream.labels();

    let base = DetectorConfig::new(6, 48).with_warmup(warmup);
    let variants: Vec<(&str, Box<dyn StreamingDetector>)> = vec![
        (
            "global (no forgetting)",
            Box::new(base.build_fd(stream.dim)),
        ),
        (
            "exponential decay (alpha=0.9 / 50 pts)",
            Box::new(base.with_decay(0.9, 50).build_fd(stream.dim)),
        ),
        (
            "sliding window (last 1000 pts)",
            Box::new(base.build_windowed_fd(stream.dim, 250, 4)),
        ),
    ];

    println!(
        "sensor stream: n={}, d={}, drift at t=4000\n",
        stream.len(),
        stream.dim
    );
    println!(
        "{:<42} {:>10} {:>12} {:>12}",
        "detector", "AUC(all)", "AUC(pre)", "AUC(post)"
    );
    for (name, mut det) in variants {
        let mut scores = Vec::with_capacity(stream.len());
        for (v, _) in stream.iter() {
            scores.push(det.process(v));
        }
        let mid = stream.len() / 2;
        let all = roc_auc(&scores[warmup..], &labels[warmup..]).unwrap();
        let pre = roc_auc(&scores[warmup..mid], &labels[warmup..mid]).unwrap();
        // Skip the immediate post-switch adaptation region for the "post"
        // column so it measures steady-state behaviour.
        let post_start = mid + 500;
        let post = roc_auc(&scores[post_start..], &labels[post_start..]).unwrap();
        println!("{name:<42} {all:>10.4} {pre:>12.4} {post:>12.4}");
    }
    println!("\nExpected shape: all three match before the drift; the global");
    println!("detector's post-drift AUC collapses while decay/window recover.");
}
