//! Quickstart: score a stream with the frequent-directions detector and
//! turn scores into alerts with a target false-positive rate.
//!
//! ```text
//! cargo run --release -p sketchad-core --example quickstart
//! ```

use sketchad_core::{DetectorConfig, StreamingDetector, ThresholdedDetector};
use sketchad_streams::{generate_low_rank_stream, LowRankStreamConfig};

fn main() {
    // 1. A synthetic stream: points near a rank-5 subspace of R^50, with 2%
    //    planted off-subspace anomalies. Swap in your own data by reading a
    //    CSV via `sketchad_streams::io::read_csv`.
    let stream = generate_low_rank_stream(LowRankStreamConfig {
        n: 4_000,
        d: 50,
        k: 5,
        anomaly_rate: 0.02,
        seed: 42,
        ..Default::default()
    });

    // 2. A rank-5 detector over a 32-row frequent-directions sketch.
    //    Memory is O(ell * d) regardless of how long the stream runs.
    let detector = DetectorConfig::new(5, 32)
        .with_warmup(200)
        .build_fd(stream.dim);

    // 3. Wrap it for binary alerts targeting a 1% false-positive rate.
    let mut alerting = ThresholdedDetector::new(detector, 0.01, 300);

    let mut true_pos = 0usize;
    let mut false_pos = 0usize;
    let mut flagged = Vec::new();
    for (i, (values, is_anomaly)) in stream.iter().enumerate() {
        let alert = alerting.process(values);
        if alert.is_anomaly {
            flagged.push(i);
            if is_anomaly {
                true_pos += 1;
            } else {
                false_pos += 1;
            }
        }
    }

    let total_anomalies = stream.anomaly_count();
    println!(
        "stream: n={}, d={}, planted anomalies={total_anomalies}",
        stream.len(),
        stream.dim
    );
    println!(
        "alerts: {} raised — {true_pos} true positives, {false_pos} false positives",
        flagged.len()
    );
    println!(
        "recall: {:.1}%  (first alerts at indices {:?})",
        100.0 * true_pos as f64 / total_anomalies as f64,
        &flagged[..flagged.len().min(5)]
    );
    println!("detector: {}", alerting.inner().name());
}
