//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, with no `syn`/`quote` dependency
//! (the container cannot fetch crates, so the parser is hand-rolled over
//! `proc_macro::TokenStream`):
//!
//! * structs with named fields,
//! * enums with unit variants and struct (named-field) variants,
//! * the `#[serde(try_from = "Type")]` container attribute on `Deserialize`,
//! * the `#[serde(default)]` field attribute on `Deserialize` (a missing
//!   field falls back to `Default::default()`, which is how versioned
//!   artifacts stay readable across schema growth).
//!
//! Anything else (tuple structs, generics, other serde attributes) is
//! rejected with a `compile_error!` naming the unsupported feature, so a
//! future PR extending usage gets a clear signal instead of silent
//! misbehavior.
//!
//! Generated impls target the value-tree model of the sibling `serde`
//! stand-in (`Serialize::to_value` / `Deserialize::from_value`), which is
//! exactly what the vendored `serde_json` consumes and produces.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input: type name plus shape.
struct Input {
    name: String,
    shape: Shape,
    /// `#[serde(try_from = "Type")]`, when present.
    try_from: Option<String>,
}

/// One named field plus its parsed serde attributes.
struct Field {
    name: String,
    /// `#[serde(default)]`: deserialize a missing field as
    /// `Default::default()` instead of erroring.
    default: bool,
}

enum Shape {
    /// Named fields of a struct.
    Struct(Vec<Field>),
    /// Enum variants: `(name, fields)` where unit variants have no fields.
    Enum(Vec<(String, Vec<Field>)>),
}

/// A recognized `#[serde(...)]` attribute.
enum SerdeAttr {
    /// Container-level `try_from = "Type"`.
    TryFrom(String),
    /// Field-level `default`.
    Default,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens")
}

/// Parses the tokens inside a `#[serde(...)]` attribute group; errors on
/// any serde attribute outside the supported subset.
fn parse_serde_attr(tokens: &[TokenTree]) -> Result<SerdeAttr, String> {
    match tokens {
        // `try_from = "Type"`.
        [TokenTree::Ident(key), TokenTree::Punct(eq), TokenTree::Literal(lit)]
            if key.to_string() == "try_from" && eq.as_char() == '=' =>
        {
            let raw = lit.to_string();
            let inner = raw.trim_matches('"');
            Ok(SerdeAttr::TryFrom(inner.to_string()))
        }
        // `default`.
        [TokenTree::Ident(key)] if key.to_string() == "default" => Ok(SerdeAttr::Default),
        _ => {
            let rendered: String = tokens.iter().map(|t| t.to_string()).collect();
            Err(format!("unsupported #[serde({rendered})] attribute (stand-in derive supports only try_from and default)"))
        }
    }
}

/// Consumes leading attributes from `trees`, returning every recognized
/// `#[serde(...)]` attribute found.
fn skip_attributes(
    trees: &[TokenTree],
    mut pos: usize,
) -> Result<(usize, Vec<SerdeAttr>), String> {
    let mut attrs = Vec::new();
    loop {
        match (trees.get(pos), trees.get(pos + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if name.to_string() == "serde" {
                        let args: Vec<TokenTree> = args.stream().into_iter().collect();
                        attrs.push(parse_serde_attr(&args)?);
                    }
                }
                pos += 2;
            }
            _ => return Ok((pos, attrs)),
        }
    }
}

/// Skips a visibility modifier (`pub`, `pub(...)`) if present.
fn skip_visibility(trees: &[TokenTree], mut pos: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = trees.get(pos) {
        if id.to_string() == "pub" {
            pos += 1;
            if let Some(TokenTree::Group(g)) = trees.get(pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    pos += 1;
                }
            }
        }
    }
    pos
}

/// Parses the named fields inside a brace group, returning field names.
/// Skips per-field attributes, visibility and types (types are never needed:
/// generated code relies on inference through the struct constructor).
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let trees: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < trees.len() {
        let (next, attrs) = skip_attributes(&trees, pos)?;
        let mut default = false;
        for attr in attrs {
            match attr {
                SerdeAttr::Default => default = true,
                SerdeAttr::TryFrom(_) => {
                    return Err("field-level #[serde(try_from)] is unsupported".into());
                }
            }
        }
        pos = skip_visibility(&trees, next);
        let name = match trees.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        pos += 1;
        match trees.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}` (tuple structs unsupported)")),
        }
        // Skip the type: consume until a top-level comma, tracking angle
        // bracket depth (parens/brackets/braces arrive as whole groups).
        let mut angle: i32 = 0;
        while let Some(tok) = trees.get(pos) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Parses enum variants from a brace group.
fn parse_variants(group: &proc_macro::Group) -> Result<Vec<(String, Vec<Field>)>, String> {
    let trees: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < trees.len() {
        let (next, _) = skip_attributes(&trees, pos)?;
        pos = next;
        let name = match trees.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        pos += 1;
        let fields = match trees.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g)?;
                pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is unsupported by the stand-in derive"));
            }
            _ => Vec::new(),
        };
        match trees.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => pos += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("discriminant on variant `{name}` is unsupported"));
            }
            _ => {}
        }
        variants.push((name, fields));
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let (pos, attrs) = skip_attributes(&trees, 0)?;
    let mut try_from = None;
    for attr in attrs {
        match attr {
            SerdeAttr::TryFrom(t) => try_from = Some(t),
            SerdeAttr::Default => {
                return Err("container-level #[serde(default)] is unsupported".into());
            }
        }
    }
    let mut pos = skip_visibility(&trees, pos);
    let kind = match trees.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match trees.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = trees.get(pos) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is unsupported by the stand-in derive"));
        }
    }
    let body = match trees.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            return Err(format!("tuple struct `{name}` is unsupported by the stand-in derive"));
        }
        _ => return Err(format!("expected a braced body for `{name}`")),
    };
    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body)?),
        "enum" => Shape::Enum(parse_variants(body)?),
        other => return Err(format!("unsupported item kind `{other}`")),
    };
    Ok(Input { name, shape, try_from })
}

/// `#[derive(Serialize)]` — see the crate docs for the supported subset.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "entries.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut entries = ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(entries)"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n")
                    } else {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "inner.push(({f:?}.to_string(), ::serde::Serialize::to_value({f})));\n"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{\n\
                             let mut inner = ::std::vec::Vec::new();\n{pushes}\
                             ::serde::Value::Object(::std::vec![({v:?}.to_string(), ::serde::Value::Object(inner))])\n}},\n"
                        )
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — see the crate docs for the supported subset.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    if let Some(via) = &parsed.try_from {
        let out = format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let raw: {via} = ::serde::Deserialize::from_value(value)?;\n\
                     <{name} as ::std::convert::TryFrom<{via}>>::try_from(raw)\n\
                         .map_err(|e| ::serde::DeError::custom(::std::format!(\"{{}}\", e)))\n\
                 }}\n\
             }}"
        );
        return out.parse().expect("generated try_from Deserialize impl parses");
    }
    let field_init = |f: &Field| {
        let helper = if f.default {
            "__field_or_default"
        } else {
            "__field"
        };
        let f = &f.name;
        format!("{f}: ::serde::{helper}(entries, {f:?}, {name:?})?,\n")
    };
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let inits: String = fields.iter().map(field_init).collect();
            format!(
                "let entries = value.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(::std::format!(\"expected object for struct {name}\")))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, f)| f.is_empty())
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, f)| !f.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields.iter().map(field_init).collect();
                    format!(
                        "{v:?} => {{\n\
                         let entries = inner.as_object().ok_or_else(|| \
                         ::serde::DeError::custom(::std::format!(\"expected object payload for variant {name}::{v}\")))?;\n\
                         ::std::result::Result::Ok({name}::{v} {{\n{inits}}})\n}},\n"
                    )
                })
                .collect();
            format!(
                "match value {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant {{other:?}} of enum {name}\"))),\n}},\n\
                 ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                 let (tag, inner) = &pairs[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"unknown variant {{other:?}} of enum {name}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 ::std::format!(\"expected string or single-key object for enum {name}\"))),\n}}"
            )
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    );
    out.parse().expect("generated Deserialize impl parses")
}
