//! Case execution support: configuration, the deterministic RNG, and the
//! per-case error type.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Outcome of a single generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// Case rejected by `prop_assume!` (regenerated, not a failure).
    Reject(String),
    /// Case failed a `prop_assert*` (fails the whole test).
    Fail(String),
}

/// Deterministic generator driving strategies: xoshiro256** seeded from a
/// stable FNV-1a hash of the test id and the case index. No global state,
/// no OS entropy — every run generates identical cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates the generator for `case_index` of the test named `test_id`.
    pub fn deterministic(test_id: &str, case_index: u64) -> Self {
        let mut seed = fnv1a(test_id.as_bytes()) ^ case_index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        let mut rng = Self { s };
        // A couple of warmup rounds decorrelates nearby case indices.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next 64 random bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)` by rejection sampling.
    ///
    /// # Panics
    /// Panics when `span == 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "cannot sample from empty range");
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }
}
