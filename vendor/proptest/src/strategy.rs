//! Value-generation strategies and their combinators.

use crate::test_runner::TestRng;

/// How many consecutive rejections a filtering strategy tolerates before
/// giving up (mirrors the real crate's "too many local rejects" failure).
const MAX_FILTER_RETRIES: usize = 1_000;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no `ValueTree`/shrinking layer: a
/// strategy generates a plain value directly from the deterministic
/// [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retries generation until `pred` accepts the value. `whence` names
    /// the filter in the too-many-rejects panic.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence: whence.into(), pred }
    }

    /// Combined filter + map: retries until `f` returns `Some`.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, whence: whence.into(), f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected {MAX_FILTER_RETRIES} values in a row", self.whence);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map {:?} rejected {MAX_FILTER_RETRIES} values in a row",
            self.whence
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
);

// ---------------------------------------------------------------------------
// Collections and sampling
// ---------------------------------------------------------------------------

/// Size specification for collection strategies: an exact length, `a..b`,
/// or `a..=b`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`. Constructed via `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]; exposed as `prop::collection::vec`.
pub fn collection_vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy choosing uniformly from a fixed set of options.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Builds a [`Select`]; exposed as `prop::sample::select`.
///
/// # Panics
/// Panics when `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}
