//! Offline stand-in for `proptest`.
//!
//! The container cannot fetch crates, so this crate reimplements the
//! property-testing surface the workspace's `tests/proptests.rs` files use:
//! the `proptest!` macro, `prop_assert*` / `prop_assume!`, range and
//! collection strategies, `prop_map` / `prop_flat_map` / `prop_filter` /
//! `prop_filter_map`, `prop::sample::select` and `proptest::bool::ANY`.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: case inputs derive from a stable hash of the test's
//!   module path and name plus the case index — every run, every machine,
//!   the same inputs. Tier-1 CI stays reproducible with no `proptest-regressions`
//!   files.
//! * **No shrinking**: a failing case reports its case index and assertion
//!   message; inputs are reproducible from the index alone, so shrinking is
//!   a nicety rather than a necessity here.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`vec`).
pub mod collection {
    pub use crate::strategy::collection_vec as vec;
    pub use crate::strategy::SizeRange;
}

/// Sampling strategies (`select`).
pub mod sample {
    pub use crate::strategy::select;
    pub use crate::strategy::Select;
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-import surface used by every proptest file:
/// `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring the real crate's `prop::` paths
    /// (`prop::collection::vec`, `prop::sample::select`, ...).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` that runs the body over deterministically generated
/// cases. An optional leading `#![proptest_config(expr)]` sets the case
/// count for every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @config($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_id = concat!(module_path!(), "::", stringify!($name));
                let mut passed: u32 = 0;
                let mut case: u64 = 0;
                let reject_cap = (config.cases as u64) * 20 + 1000;
                while passed < config.cases {
                    if case >= reject_cap {
                        panic!(
                            "{test_id}: gave up after {case} generated cases \
                             ({passed}/{} passed; too many prop_assume rejections)",
                            config.cases
                        );
                    }
                    let mut rng =
                        $crate::test_runner::TestRng::deterministic(test_id, case);
                    case += 1;
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (move || ->
                        ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "{test_id}: case #{} failed: {msg}\n\
                                 (inputs are deterministic: re-running reproduces \
                                 this case)",
                                case - 1
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the current case
/// (with formatted context) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    ::std::format!(
                        "{} ({}:{})",
                        ::std::format!($($fmt)*),
                        file!(),
                        line!()
                    ),
                ),
            );
        }
    };
}

/// `assert_eq!` for property tests (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`: {}",
            a,
            b,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for property tests (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{:?}` != `{:?}`: {}",
            a,
            b,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    stringify!($cond).to_string(),
                ),
            );
        }
    };
}
