//! Offline stand-in for `criterion`.
//!
//! The container cannot fetch crates, so this crate implements the bench
//! API surface the workspace's `benches/` targets use — `Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Throughput::Elements`, `Bencher::iter`,
//! `black_box`, `criterion_group!` / `criterion_main!` — as a simple
//! wall-clock harness: per benchmark it warms up once, then times up to
//! `sample_size` runs (bounded by a ~3 s budget) and prints min / median /
//! mean per iteration plus derived throughput. No statistical analysis,
//! no HTML reports, no baseline storage.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample time budget: a group stops sampling a benchmark once it has
/// spent this much wall-clock time on it.
const SAMPLE_BUDGET: Duration = Duration::from_secs(3);

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI configuration, for call-site parity with
    /// the real crate.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().render(), sample_size, None, f);
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// displayable parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an id with a parameter component.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: name.into(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name, parameter: None }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (points, rows, ...) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().render());
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times repeated calls of `routine` (one call per sample, bounded by
    /// the sample budget).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > SAMPLE_BUDGET {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher { samples: Vec::new(), sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples collected");
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let mut line = format!(
        "{name}: min {} / median {} / mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
    if let Some(tp) = throughput {
        let (units, label) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 && units > 0 {
            line.push_str(&format!(" — {:.0} {label}", units as f64 / secs));
        }
    }
    println!("{line}");
}

/// Declares a bench entry point collecting the listed target functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
