//! Offline stand-in for `serde_json`.
//!
//! JSON serialization over the vendored `serde` stand-in's [`Value`] tree:
//! `to_string` / `to_string_pretty` render any `serde::Serialize` type,
//! `from_str` parses into any `serde::Deserialize` type.
//!
//! Float fidelity: numbers are written with Rust's `Display` for `f64`,
//! which produces the shortest decimal string that parses back to the
//! identical bit pattern — the property the real crate's `float_roundtrip`
//! feature provides (model persistence relies on it). Non-finite floats
//! serialize as `null`, matching the real crate's lossy default.

#![warn(missing_docs)]

use std::fmt;

pub use serde::Value;

/// Error from JSON serialization or deserialization.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display for f64 emits the shortest decimal that parses
        // back bit-identically — exactly the roundtrip guarantee we need.
        out.push_str(&format!("{f}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Infallible for the value-tree model; the `Result` shape matches the
/// real crate so call sites stay identical.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
///
/// # Errors
/// Infallible for the value-tree model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    out.push('\n');
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn to_writer<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

/// Serializes `value` as pretty JSON into `writer`.
///
/// # Errors
/// Propagates I/O errors from `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0, depth: 0 }
    }

    fn err(&self, msg: impl fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        let v = match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null)?,
            Some(b't') => self.parse_keyword("true", Value::Bool(true))?,
            Some(b'f') => self.parse_keyword("false", Value::Bool(false))?,
            Some(b'"') => Value::String(self.parse_string()?),
            Some(b'[') => self.parse_array()?,
            Some(b'{') => self.parse_object()?,
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number()?,
            Some(b) => return Err(self.err(format!("unexpected character {:?}", b as char))),
            None => return Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        Ok(v)
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| self.err(e))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a trailing \uXXXX.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape {:?}", other as char))
                            )
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| self.err(e))?;
        let v = u32::from_str_radix(hex, 16).map_err(|e| self.err(e))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| self.err(e))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer literal too large for 64 bits: fall through to f64.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON document into any deserializable type.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON, trailing input, or a shape
/// mismatch reported by the target type's `Deserialize` impl.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    T::from_value(&value).map_err(Error::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_bitwise() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 1e300, -2.5, 0.0, 123456.789012345] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\n\"quoted\"\t\\slash\u{1F600}".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<f64>("1.5 x").is_err());
        assert!(from_str::<Vec<f64>>("[1,2").is_err());
    }

    #[test]
    fn parses_nested_structures() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5], "b": {"c": null}}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "a");
        assert_eq!(obj[0].1.as_array().unwrap().len(), 3);
    }
}
