//! Offline stand-in for `serde`.
//!
//! The container cannot fetch crates, so this crate provides the exact
//! serialization surface the workspace uses. Instead of the real serde's
//! visitor-based data model, it uses a concrete JSON-shaped value tree
//! ([`Value`]): `Serialize` renders a type into a [`Value`], `Deserialize`
//! rebuilds a type from one. The vendored `serde_json` is the only
//! format driver and works directly on this tree.
//!
//! The derive macros (re-exported from the sibling `serde_derive`
//! stand-in) cover structs with named fields, enums with unit/struct
//! variants, and the `#[serde(try_from = "Type")]` container attribute —
//! everything this repo derives. JSON layouts match real serde_json:
//! structs as objects, `Option` as `null`/value, unit enum variants as
//! strings, struct variants as single-key objects.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree: the data model of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON integers).
    Int(i64),
    /// Unsigned integer (non-negative JSON integers).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved for readable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, when this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, when this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Self { message: message.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Renders a value into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    ///
    /// # Errors
    /// Returns a [`DeError`] describing any shape or type mismatch.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from its object. `Option`
    /// fields default to `None`; everything else is an error.
    #[doc(hidden)]
    fn missing_field(field: &str, in_type: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}` in {in_type}")))
    }
}

/// Derive-internal helper: looks up `field` in a struct's object entries.
#[doc(hidden)]
pub fn __field<T: Deserialize>(
    entries: &[(String, Value)],
    field: &str,
    in_type: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::custom(format!("{in_type}.{field}: {e}"))),
        None => T::missing_field(field, in_type),
    }
}

/// Derive-internal helper for `#[serde(default)]` fields: a field absent
/// from the object deserializes as `Default::default()` instead of erroring,
/// so artifacts written before the field existed stay readable.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    entries: &[(String, Value)],
    field: &str,
    in_type: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == field) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::custom(format!("{in_type}.{field}: {e}"))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        DeError::custom(format!("integer {u} out of range for i64"))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::custom(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str, _in_type: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| V::from_value(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array().ok_or_else(|| {
                    DeError::custom(format!("expected array (tuple), found {}", value.kind()))
                })?;
                let expected = [$($n),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));
