//! Offline stand-in for the `rand` crate.
//!
//! This container builds without network access, so the real `rand` crate
//! cannot be fetched. This crate implements the exact API subset the
//! workspace uses — `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen::<f64 | u64 | u32 | bool>()` and `Rng::gen_range` over integer
//! and float ranges — with the same shapes as `rand 0.8`, backed by
//! xoshiro256** seeded through SplitMix64.
//!
//! Determinism contract: for a fixed seed the generated sequence is stable
//! across runs, platforms and rebuilds (the workspace's reproducibility
//! tests rely on this). The streams are *not* identical to upstream
//! `rand`'s ChaCha12-based `StdRng`; nothing in the workspace depends on
//! the specific values, only on determinism and statistical quality.

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (the workspace's entry point).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution of `Rng::gen`.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches the upstream
    /// `Standard` distribution's construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that `Rng::gen_range` can sample from, producing `T`.
///
/// `T` is a trait parameter rather than an associated type so that type
/// inference can flow *backwards* from the use site (e.g. a slice index
/// forcing `usize`) into the range's literal bounds, as with the real crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of `span` that fits in u64; draws at or above it are
    // rejected so the remainder is exactly uniform.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f32::sample(rng);
        self.start + (self.end - self.start) * u
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value from the standard distribution of `T` (uniform bits
    /// for integers, uniform `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p ∉ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs for the
    /// compatibility contract (determinism, not value-identity).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand seeds into full generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed through
            // SplitMix64 in that (pathological) case.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same == 0);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
